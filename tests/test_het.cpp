// Tests for the incremental selection variants and the Het
// meta-algorithm (section 5).
#include <gtest/gtest.h>

#include <set>

#include "platform/generator.hpp"
#include "sched/het.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

TEST(HetVariants, ExactlyEightDistinct) {
  const auto variants = all_het_variants();
  ASSERT_EQ(variants.size(), 8u);
  std::set<std::string> names;
  for (const HetVariant& variant : variants) names.insert(variant.name());
  EXPECT_EQ(names.size(), 8u);
}

TEST(HetVariants, NamesEncodeOptions) {
  EXPECT_EQ((HetVariant{true, false, false}).name(), "het-global");
  EXPECT_EQ((HetVariant{false, true, true}).name(), "het-local+la+ccost");
}

// Every variant must produce a complete, invariant-respecting schedule.
class EveryVariant : public ::testing::TestWithParam<int> {};

TEST_P(EveryVariant, CompletesWithValidTrace) {
  const HetVariant variant =
      all_het_variants()[static_cast<std::size_t>(GetParam())];
  const platform::Platform plat = platform::fully_hetero(3.0);
  const auto part = blocks(15, 6, 40);
  IncrementalScheduler scheduler(plat, part, variant);
  const sim::RunResult result = sim::simulate(scheduler, plat, part, true);
  EXPECT_EQ(result.updates, 15 * 40 * 6);
  EXPECT_TRUE(result.trace.one_port_respected());
  EXPECT_TRUE(result.trace.compute_serialized());
}

INSTANTIATE_TEST_SUITE_P(AllEight, EveryVariant, ::testing::Range(0, 8));

TEST(Het, SelectionPicksTheBestVariant) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(20, 8, 50);
  const HetSelection selection = select_het(plat, part);
  ASSERT_EQ(selection.variant_makespans.size(), 8u);
  double best = selection.variant_makespans.front();
  for (const double makespan : selection.variant_makespans)
    best = std::min(best, makespan);
  EXPECT_DOUBLE_EQ(selection.predicted_makespan, best);
}

TEST(Het, ReplayMatchesPrediction) {
  // Phase 2 replays phase 1's winner: simulated makespans must agree
  // exactly (the engine is deterministic).
  const platform::Platform plat = platform::hetero_links();
  const auto part = blocks(15, 8, 40);
  HetSelection selection;
  auto replay = make_het(plat, part, &selection);
  const sim::RunResult result = sim::simulate(replay, plat, part);
  EXPECT_DOUBLE_EQ(result.makespan, selection.predicted_makespan);
}

TEST(Het, NeverWorseThanAnyOwnVariant) {
  for (const auto& plat :
       {platform::hetero_memory(), platform::hetero_compute()}) {
    const auto part = blocks(12, 6, 30);
    const HetSelection selection = select_het(plat, part);
    for (const double makespan : selection.variant_makespans)
      EXPECT_LE(selection.predicted_makespan, makespan + 1e-9);
  }
}

TEST(Het, LookaheadVariantsDifferFromGreedy) {
  // On a sufficiently heterogeneous platform the eight variants should
  // not all collapse to one schedule; at least two distinct makespans.
  const platform::Platform plat = platform::fully_hetero(4.0);
  const auto part = blocks(100, 10, 300);
  const HetSelection selection = select_het(plat, part);
  std::set<double> distinct(selection.variant_makespans.begin(),
                            selection.variant_makespans.end());
  EXPECT_GE(distinct.size(), 2u);
}

TEST(Het, LookaheadScratchProjectionsTrackObservedSlowdown) {
  // The look-ahead's scratch engine prices hypothetical futures with
  // ExecutionView::calibrated_w, not the static w_i. On an instance
  // whose fastest worker collapses 8x mid-run (invisible to the static
  // platform description), the calibrated probes must steer work away
  // from it: the slowed worker ends the run with strictly fewer updates
  // than in the unperturbed run.
  const auto plat = platform::Platform::homogeneous(3, 0.001, 0.02, 40);
  const auto part = matrix::Partition(96, 64, 160, 8);
  const HetVariant lookahead{/*global=*/true, /*lookahead=*/true,
                             /*count_c_cost=*/false};

  sim::Engine baseline_engine(plat, part);
  IncrementalScheduler baseline_scheduler(plat, part, lookahead);
  const sim::RunResult baseline =
      sim::run(baseline_scheduler, baseline_engine);
  const model::BlockCount baseline_updates =
      baseline_engine.progress(1).updates_assigned;
  EXPECT_GT(baseline_updates, 0);

  platform::SlowdownSchedule slowdown;
  slowdown.add(/*worker=*/1, baseline.makespan * 0.25, /*factor=*/8.0);
  sim::Engine perturbed_engine(
      sim::InstanceContext::make(plat, part, slowdown),
      /*record_trace=*/false);
  IncrementalScheduler perturbed_scheduler(plat, part, lookahead);
  const sim::RunResult perturbed =
      sim::run(perturbed_scheduler, perturbed_engine);

  EXPECT_GT(perturbed.makespan, baseline.makespan);
  EXPECT_LT(perturbed_engine.progress(1).updates_assigned, baseline_updates);
}

TEST(Het, RespectsPerWorkerMemoryInChunks) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(20, 8, 50);
  HetSelection selection;
  make_het(plat, part, &selection);
  for (const sim::Decision& decision : selection.decisions) {
    if (decision.comm == sim::CommKind::kSendC) {
      const auto& worker =
          plat.worker(decision.worker);
      EXPECT_LE(decision.chunk.peak_buffers(), worker.m);
      EXPECT_LE(decision.chunk.rect.cols(),
                static_cast<std::size_t>(worker.mu()));
    }
  }
}

}  // namespace
}  // namespace hmxp::sched
