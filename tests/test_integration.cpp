// Integration tests: the qualitative claims of the paper's section 6,
// checked end-to-end on reduced-size instances of the experimental
// platforms. These guard the reproduction's "shape": who wins, who
// over-enrolls, and the steady-state bound's validity.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "model/steady_state.hpp"
#include "platform/generator.hpp"
#include "util/rng.hpp"

namespace hmxp {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

core::InstanceResults run_all(const platform::Platform& plat,
                              const matrix::Partition& part) {
  const core::Instance instance{plat.name(), plat, part};
  return core::run_instance(instance, core::all_algorithms());
}

double metric_for(const core::InstanceResults& results,
                  core::Algorithm algorithm,
                  const std::vector<double> core::InstanceResults::* metric) {
  const auto& algorithms = core::all_algorithms();
  for (std::size_t i = 0; i < algorithms.size(); ++i)
    if (algorithms[i] == algorithm) return (results.*metric)[i];
  ADD_FAILURE() << "algorithm not found";
  return 0.0;
}

const core::RunReport& report_for(const core::InstanceResults& results,
                                  core::Algorithm algorithm) {
  const auto& algorithms = core::all_algorithms();
  for (std::size_t i = 0; i < algorithms.size(); ++i)
    if (algorithms[i] == algorithm) return results.reports[i];
  throw std::logic_error("algorithm not found");
}

// Reduced-size versions of the paper's three one-parameter platforms.
class PaperPlatforms : public ::testing::TestWithParam<const char*> {
 protected:
  platform::Platform make() const {
    const std::string name = GetParam();
    if (name == "mem") return platform::hetero_memory();
    if (name == "links") return platform::hetero_links();
    return platform::hetero_compute();
  }
};

TEST_P(PaperPlatforms, HetIsNearBest) {
  // The paper's headline: Het achieves the best makespan on 10 of 12
  // platforms and stays within 9% otherwise (14% across everything).
  // We allow 25% at this reduced scale, where single-chunk effects are
  // proportionally larger.
  const auto results = run_all(make(), blocks(100, 100, 800));
  EXPECT_LE(metric_for(results, "Het",
                       &core::InstanceResults::relative_cost),
            1.25);
}

TEST_P(PaperPlatforms, HetWorkNoWorseThanNonSelectingAlgorithms) {
  // Het spares resources: its makespan * enrolled never exceeds the
  // non-selecting ODDOML's and ORROML's.
  const auto results = run_all(make(), blocks(100, 100, 800));
  const double het = metric_for(results, "Het",
                                &core::InstanceResults::relative_work);
  EXPECT_LE(het, 1.05 * metric_for(results, "ORROML",
                                   &core::InstanceResults::relative_work));
  EXPECT_LE(het, 1.05 * metric_for(results, "ODDOML",
                                   &core::InstanceResults::relative_work));
}

TEST_P(PaperPlatforms, SteadyStateBoundHolds) {
  // Table 1's LP ignores C traffic and transients: it must upper-bound
  // every algorithm's achieved throughput.
  const auto results = run_all(make(), blocks(100, 20, 400));
  for (const core::RunReport& report : results.reports) {
    EXPECT_GE(report.bound_over_achieved, 1.0 - 1e-9)
        << report.algorithm_label;
  }
}

TEST_P(PaperPlatforms, OmmomlIsThrifty) {
  // OMMOML under-enrolls (paper fig. 4: "very thrifty ... at the expense
  // of its absolute cost").
  const auto results = run_all(make(), blocks(100, 100, 800));
  const auto& ommoml = report_for(results, "OMMOML");
  const auto& oddoml = report_for(results, "ODDOML");
  EXPECT_LT(ommoml.result.workers_enrolled,
            oddoml.result.workers_enrolled);
}

INSTANTIATE_TEST_SUITE_P(Families, PaperPlatforms,
                         ::testing::Values("mem", "links", "comp"));

TEST(PaperShape, LayoutAdvantageOverToledo) {
  // Section 6.3 summary: the optimized memory layout (ODDOML) beats
  // Toledo's (BMM) on average across the experiment families.
  double oddoml_sum = 0.0, bmm_sum = 0.0;
  for (const auto& plat :
       {platform::hetero_memory(), platform::hetero_links(),
        platform::hetero_compute()}) {
    const auto results = run_all(plat, blocks(100, 100, 800));
    oddoml_sum += metric_for(results, "ODDOML",
                             &core::InstanceResults::relative_cost);
    bmm_sum += metric_for(results, "BMM",
                          &core::InstanceResults::relative_cost);
  }
  EXPECT_LT(oddoml_sum, bmm_sum);
}

TEST(PaperShape, HetBeatsBmmEverywhere) {
  // "27% against Toledo's running time" on average; at this scale we
  // assert strict dominance per family.
  for (const auto& plat :
       {platform::hetero_memory(), platform::hetero_links(),
        platform::hetero_compute(), platform::fully_hetero(2.0),
        platform::fully_hetero(4.0)}) {
    const auto results = run_all(plat, blocks(100, 100, 800));
    EXPECT_LT(metric_for(results, "Het",
                         &core::InstanceResults::relative_cost),
              metric_for(results, "BMM",
                         &core::InstanceResults::relative_cost))
        << plat.name();
  }
}

TEST(PaperShape, RandomPlatformsHetStaysClose) {
  // Fig. 7: on random platforms Het is never catastrophically off.
  util::Rng rng(20080220);  // PPoPP'08 conference date as seed
  for (int round = 0; round < 3; ++round) {
    platform::Platform plat = platform::random_platform(rng);
    const auto results = run_all(plat, blocks(100, 30, 400));
    EXPECT_LE(metric_for(results, "Het",
                         &core::InstanceResults::relative_cost),
              1.35)
        << plat.name();
  }
}

TEST(PaperShape, RealPlatformEnrollment) {
  // Section 6.3 "Real platform": algorithms with resource selection use
  // roughly half of the twenty workers (the paper reports eleven).
  const platform::Platform plat = platform::real_platform_aug2007();
  const auto part = blocks(100, 25, 1000);
  const auto results = run_all(plat, part);
  const auto& het = report_for(results, "Het");
  EXPECT_GE(het.result.workers_enrolled, 5);
  EXPECT_LE(het.result.workers_enrolled, 16);
  // Demand-driven uses (almost) everything it can reach.
  const auto& oddoml = report_for(results, "ODDOML");
  EXPECT_GE(oddoml.result.workers_enrolled, het.result.workers_enrolled);
}

TEST(PaperShape, Nov2006MemoryHeterogeneityChangesSelection) {
  // On the pre-upgrade cluster, Het concentrates on the 1 GiB workers
  // (the paper: "Het uses only the ten workers which have 1 GB").
  const platform::Platform plat = platform::real_platform_nov2006();
  const auto part = blocks(100, 25, 1000);
  sched::HetSelection selection;
  auto replay = sched::make_het(plat, part, &selection);
  // Count chunk area assigned to small-memory workers.
  double small_area = 0.0, total_area = 0.0;
  for (const sim::Decision& decision : selection.decisions) {
    if (decision.comm != sim::CommKind::kSendC) continue;
    const double area = static_cast<double>(decision.chunk.rect.count());
    total_area += area;
    if (plat.worker(decision.worker).m < 10000) small_area += area;
  }
  EXPECT_LT(small_area, 0.5 * total_area);
}

TEST(PaperShape, SteadyStateBoundModeratelyTight) {
  // The paper: the upper bound averages 2.29x Het's throughput, at
  // worst 3.42x. Guard a generous band at reduced scale.
  util::Samples ratios;
  for (const auto& plat :
       {platform::hetero_memory(), platform::hetero_links(),
        platform::hetero_compute()}) {
    const auto part = blocks(100, 100, 800);
    const auto report =
        core::run_algorithm("Het", plat, part);
    ratios.add(report.bound_over_achieved);
  }
  EXPECT_GE(ratios.min(), 1.0);
  EXPECT_LE(ratios.mean(), 5.0);
}

}  // namespace
}  // namespace hmxp
