// Tests for the section 3 theory: memory layouts and CCR bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "model/bounds.hpp"
#include "model/layout.hpp"

namespace hmxp::model {
namespace {

TEST(Layout, MaxReuseMuKnownValues) {
  // Paper's running example: m = 21 -> mu = 4 (1 + 4 + 16 = 21).
  EXPECT_EQ(max_reuse_mu(21), 4);
  EXPECT_EQ(max_reuse_mu(3), 1);   // 1 + 1 + 1 = 3
  EXPECT_EQ(max_reuse_mu(6), 1);   // 1 + 2 + 4 = 7 > 6
  EXPECT_EQ(max_reuse_mu(7), 2);
  EXPECT_THROW(max_reuse_mu(2), std::invalid_argument);
}

TEST(Layout, DoubleBufferedMuKnownValues) {
  EXPECT_EQ(double_buffered_mu(5), 1);    // 1 + 4 = 5
  EXPECT_EQ(double_buffered_mu(11), 1);   // 4 + 8 = 12 > 11
  EXPECT_EQ(double_buffered_mu(12), 2);
  EXPECT_EQ(double_buffered_mu(21), 3);   // 9 + 12 = 21
  EXPECT_THROW(double_buffered_mu(4), std::invalid_argument);
}

TEST(Layout, ToledoBetaKnownValues) {
  EXPECT_EQ(toledo_beta(3), 1);
  EXPECT_EQ(toledo_beta(11), 1);
  EXPECT_EQ(toledo_beta(12), 2);
  EXPECT_EQ(toledo_beta(27), 3);
  EXPECT_THROW(toledo_beta(2), std::invalid_argument);
}

TEST(Layout, Footprints) {
  EXPECT_EQ(max_reuse_footprint(4), 21);
  EXPECT_EQ(double_buffered_footprint(3), 21);
  EXPECT_THROW(max_reuse_footprint(0), std::invalid_argument);
}

// Property sweep: the chosen mu is feasible and maximal for a wide range
// of memory sizes, including values around perfect squares where
// off-by-one bugs live.
class LayoutProperty : public ::testing::TestWithParam<BlockCount> {};

TEST_P(LayoutProperty, MaxReuseMuIsMaximalFeasible) {
  const BlockCount m = GetParam();
  const BlockCount mu = max_reuse_mu(m);
  EXPECT_LE(1 + mu + mu * mu, m);
  EXPECT_GT(1 + (mu + 1) + (mu + 1) * (mu + 1), m);
}

TEST_P(LayoutProperty, DoubleBufferedMuIsMaximalFeasible) {
  const BlockCount m = GetParam();
  if (m < 5) return;
  const BlockCount mu = double_buffered_mu(m);
  EXPECT_LE(mu * mu + 4 * mu, m);
  EXPECT_GT((mu + 1) * (mu + 1) + 4 * (mu + 1), m);
}

TEST_P(LayoutProperty, ToledoBetaIsMaximalFeasible) {
  const BlockCount m = GetParam();
  const BlockCount beta = toledo_beta(m);
  EXPECT_LE(3 * beta * beta, m);
  EXPECT_GT(3 * (beta + 1) * (beta + 1), m);
}

TEST_P(LayoutProperty, MaxReuseBeatsToledoChunkSide) {
  // The maximum re-use layout always supports at least as large a chunk
  // side as the thirds layout -- the sqrt(3) advantage in the limit.
  const BlockCount m = GetParam();
  EXPECT_GE(max_reuse_mu(m), toledo_beta(m));
}

INSTANTIATE_TEST_SUITE_P(
    MemorySweep, LayoutProperty,
    ::testing::Values<BlockCount>(3, 4, 5, 6, 7, 8, 9, 12, 13, 20, 21, 22, 48,
                                  49, 50, 99, 100, 101, 440, 441, 442, 1000,
                                  4095, 4096, 4097, 10000, 123456, 1000000));

TEST(Bounds, LoomisWhitney) {
  EXPECT_DOUBLE_EQ(loomis_whitney(4, 9, 16), 24.0);
  EXPECT_DOUBLE_EQ(loomis_whitney(0, 9, 16), 0.0);
  EXPECT_THROW(loomis_whitney(-1, 1, 1), std::invalid_argument);
}

TEST(Bounds, PaperBoundTightensToledoBound) {
  // sqrt(27/8m) improves on sqrt(1/8m) by a factor sqrt(27).
  for (const BlockCount m : {8, 21, 100, 10000}) {
    EXPECT_NEAR(ccr_lower_bound(m) / ccr_lower_bound_itt(m), std::sqrt(27.0),
                1e-12);
  }
}

TEST(Bounds, MaxReuseWithinSqrt32Over27OfLowerBound) {
  // CCR_maxreuse(asymptotic, closed form) / CCR_opt = sqrt(32/27): the
  // algorithm is within ~8.8% of the bound.
  for (const BlockCount m : {100, 1024, 65536, 1000000}) {
    const double ratio = max_reuse_ccr_closed_form(m) / ccr_lower_bound(m);
    EXPECT_NEAR(ratio, std::sqrt(32.0 / 27.0), 1e-12);
  }
}

TEST(Bounds, AlgorithmCCRNeverBeatsLowerBound) {
  for (const BlockCount m : {3, 7, 21, 100, 441, 10007, 250000}) {
    for (const BlockCount t : {1, 10, 100, 100000}) {
      EXPECT_GE(max_reuse_ccr(m, t), ccr_lower_bound(m))
          << "m=" << m << " t=" << t;
      EXPECT_GE(toledo_ccr(m, t), ccr_lower_bound(m)) << "m=" << m;
    }
  }
}

TEST(Bounds, ToledoAsymptoticallySqrt3Worse) {
  // beta ~ sqrt(m/3), mu ~ sqrt(m): ratio of asymptotic CCRs -> sqrt(3).
  const BlockCount m = 3000000;
  EXPECT_NEAR(toledo_ccr_asymptotic(m) / max_reuse_ccr_asymptotic(m),
              std::sqrt(3.0), 0.01);
}

TEST(Bounds, CCRDecreasesWithMemory) {
  double previous = max_reuse_ccr(10, 100);
  for (const BlockCount m : {50, 200, 1000, 5000, 25000}) {
    const double ccr = max_reuse_ccr(m, 100);
    EXPECT_LT(ccr, previous);
    previous = ccr;
  }
}

TEST(Bounds, FiniteTTermMatchesFormula) {
  // CCR = 2/t + 2/mu exactly.
  const BlockCount m = 21;  // mu = 4
  EXPECT_DOUBLE_EQ(max_reuse_ccr(m, 10), 2.0 / 10 + 2.0 / 4);
  EXPECT_DOUBLE_EQ(toledo_ccr(27, 10), 2.0 / 10 + 2.0 / 3);
}

TEST(Bounds, MaxUpdatesPerMCommunications) {
  // K = sqrt((2m/3)^3) at the balanced optimum.
  const BlockCount m = 24;
  EXPECT_NEAR(max_updates_per_m_communications(m), std::pow(16.0, 1.5),
              1e-9);
}

}  // namespace
}  // namespace hmxp::model
