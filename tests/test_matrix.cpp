// Tests for the dense matrix container and views.
#include <gtest/gtest.h>

#include "matrix/matrix.hpp"
#include "util/rng.hpp"

namespace hmxp::matrix {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 1.5);
  m.at(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(m.data()[1 * 4 + 2], -2.0);  // row-major layout
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::logic_error);
  EXPECT_THROW(m.at(0, 2), std::logic_error);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(eye.at(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, RandomIsDeterministicPerSeed) {
  util::Rng rng1(7), rng2(7);
  const Matrix a = Matrix::random(4, 5, rng1);
  const Matrix b = Matrix::random(4, 5, rng2);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_GE(a.at(i, j), -1.0);
      EXPECT_LT(a.at(i, j), 1.0);
    }
}

TEST(Matrix, MaxAbsDiffAndNorm) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 2.0);
  Matrix c(2, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), std::invalid_argument);
}

TEST(Views, WindowReflectsParent) {
  Matrix m(4, 6, 0.0);
  View window = m.window(1, 2, 2, 3);
  EXPECT_EQ(window.rows(), 2u);
  EXPECT_EQ(window.cols(), 3u);
  EXPECT_EQ(window.stride(), 6u);
  window.at(0, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 9.0);
  window.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(2, 4), 7.0);
}

TEST(Views, WindowBoundsChecked) {
  Matrix m(4, 6);
  EXPECT_THROW(m.window(3, 0, 2, 1), std::invalid_argument);
  EXPECT_THROW(m.window(0, 5, 1, 2), std::invalid_argument);
  EXPECT_THROW(View(m.data(), 2, 4, 3), std::invalid_argument);  // stride<cols
}

TEST(Views, ConstViewFromMutable) {
  Matrix m(2, 2, 3.0);
  View mutable_view = m.view();
  ConstView const_view = mutable_view;  // implicit conversion
  EXPECT_DOUBLE_EQ(const_view.at(0, 0), 3.0);
}

TEST(Views, CopyIntoAndAccumulate) {
  Matrix src(2, 2, 2.0);
  Matrix dst(4, 4, 1.0);
  copy_into(src.view(), dst.window(1, 1, 2, 2));
  EXPECT_DOUBLE_EQ(dst.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(dst.at(0, 0), 1.0);
  accumulate(src.view(), dst.window(1, 1, 2, 2));
  EXPECT_DOUBLE_EQ(dst.at(2, 2), 4.0);
  Matrix wrong(3, 3);
  EXPECT_THROW(copy_into(wrong.view(), dst.window(0, 0, 2, 2)),
               std::invalid_argument);
}

TEST(Matrix, FillResets) {
  Matrix m(2, 2, 5.0);
  m.fill(0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.5);
}

}  // namespace
}  // namespace hmxp::matrix
