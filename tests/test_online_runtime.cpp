// Tests for the online execution backend: live demand-driven scheduling
// on a heterogeneous (and mid-run-perturbed) platform, sim-vs-runtime
// decision parity, worker-exception propagation, the verification
// failure path, and the dynamic-perturbation hook on the simulator side.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/run.hpp"
#include "platform/perturbation.hpp"
#include "runtime/executor.hpp"
#include "sched/demand_driven.hpp"
#include "sched/round_robin.hpp"
#include "util/rng.hpp"

namespace hmxp::runtime {
namespace {

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- live demand-driven on a heterogeneous, time-varying platform ----------

TEST(OnlineRuntime, DemandDrivenHeterogeneousSlowdownVerifies) {
  // Odd sizes exercise edge blocks; static slowdowns make the workers
  // really heterogeneous and a perturbation flips the balance mid-run.
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 30, "small"},
      {0.01, 0.002, 60, "mid"},
      {0.005, 0.001, 140, "big"},
  };
  const platform::Platform plat("hetero", specs);
  const auto a = random_matrix(52, 70, 1);
  const auto b = random_matrix(70, 100, 2);
  matrix::Matrix c = random_matrix(52, 100, 3);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.compute_slowdown = {1, 3, 2};
  // Mid-run (wall clock) the big worker slows 8x and the small one
  // recovers; the scheduler only sees this through actual completions.
  options.perturbation.add(/*worker=*/2, /*at=*/0.002, /*factor=*/8.0);
  options.perturbation.add(/*worker=*/1, /*at=*/0.004, /*factor=*/0.5);

  const ExecutorReport report =
      execute_online(scheduler, plat, part, a, b, c, options);

  EXPECT_TRUE(report.verified);
  EXPECT_LT(report.max_abs_error, 1e-10);
  EXPECT_EQ(report.updates_performed, 7u * 13u * 9u);
  // The report carries the simulator-shaped RunResult.
  EXPECT_EQ(report.result.scheduler_name, "ODDOML");
  EXPECT_GT(report.result.makespan, 0.0);
  EXPECT_GT(report.result.decisions, 0u);
  EXPECT_EQ(report.result.updates,
            static_cast<model::BlockCount>(7 * 13 * 9));
  EXPECT_GE(report.result.workers_enrolled, 2);
}

// ---- pooled data plane: no per-step heap allocation -------------------------

TEST(OnlineRuntime, SteadyStateMasterLoopDoesNotAllocatePerStep) {
  // Two runs over the same platform where the second has twice the
  // inner (k) extent, i.e. twice the operand steps. With the pooled
  // data plane, buffer-pool ALLOCATIONS are a warm-up constant set by
  // the number of distinct payload shapes in flight -- they must not
  // scale with the number of scheduled steps, while acquires do.
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto run = [&plat](std::size_t n_ab) {
    const matrix::Partition part(40, n_ab, 48, 8);
    const auto a = random_matrix(40, n_ab, 21);
    const auto b = random_matrix(n_ab, 48, 22);
    matrix::Matrix c(40, 48, 0.0);
    auto scheduler = sched::make_oddoml(plat, part);
    ExecutorOptions options;
    options.verify = false;
    return execute_online(scheduler, plat, part, a, b, c, options);
  };

  const ExecutorReport base = run(64);
  const ExecutorReport doubled = run(128);

  const BufferPool::Stats& s1 = base.buffer_pool;
  const BufferPool::Stats& s2 = doubled.buffer_pool;
  // Twice the steps really happened...
  EXPECT_GT(doubled.updates_performed, base.updates_performed);
  EXPECT_GT(s2.acquires, s1.acquires + s1.acquires / 2);
  // ...but the heap was only touched during warm-up: every steady-state
  // checkout was served by recycling. Allocations are bounded by the
  // worst-case in-flight buffer population (workers x bounded-inbox
  // messages x payloads per message, ~30 here -- a bound set by channel
  // capacities and independent of master/worker interleaving), never by
  // the step count: a per-step allocator would be in the hundreds on
  // the doubled run (2 operand buffers per SendAB alone).
  EXPECT_EQ(s1.allocations + s1.reuses, s1.acquires);
  EXPECT_EQ(s2.allocations + s2.reuses, s2.acquires);
  EXPECT_LE(s1.allocations, 48u);
  EXPECT_LE(s2.allocations, 48u);
  EXPECT_GT(s2.reuses, s2.acquires * 3 / 4);
}

// ---- sim vs runtime decision parity ----------------------------------------

TEST(OnlineRuntime, DecisionSequenceParityForDeterministicPolicy) {
  // Round-robin decides from progress structure only (never from
  // times), so the live runtime must reproduce the simulator's decision
  // sequence exactly -- even on a heterogeneous platform.
  const matrix::Partition part(96, 64, 160, 8);
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 21, "tiny"},
      {0.01, 0.001, 60, "small"},
      {0.005, 0.002, 140, "big"},
  };
  const platform::Platform plat("hetero", specs);

  auto sim_scheduler = sched::make_orroml(plat, part);
  std::vector<sim::Decision> simulated;
  const sim::RunResult sim_result =
      sim::simulate(sim_scheduler, plat, part, false, &simulated);

  const auto a = random_matrix(96, 64, 4);
  const auto b = random_matrix(64, 160, 5);
  matrix::Matrix c(96, 160, 0.25);
  auto live_scheduler = sched::make_orroml(plat, part);
  std::vector<sim::Decision> live;
  const ExecutorReport report =
      execute_online(live_scheduler, plat, part, a, b, c, {}, &live);

  EXPECT_EQ(report.result.decisions, sim_result.decisions);
  ASSERT_EQ(live.size(), simulated.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].comm, simulated[i].comm) << "decision " << i;
    EXPECT_EQ(live[i].worker, simulated[i].worker) << "decision " << i;
  }
  // Same decisions -> same model projection.
  EXPECT_DOUBLE_EQ(report.result.makespan, sim_result.makespan);
  EXPECT_EQ(report.result.comm_blocks, sim_result.comm_blocks);
}

TEST(OnlineRuntime, DecisionCountParityDemandDrivenHomogeneous) {
  // Demand-driven may reorder online (actual completions beat model
  // projections), but on a homogeneous platform every carve has the
  // same width, so the decision COUNT is order-invariant.
  const matrix::Partition part(52, 70, 100, 8);
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);

  auto sim_scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult sim_result = sim::simulate(sim_scheduler, plat, part);

  const auto a = random_matrix(52, 70, 6);
  const auto b = random_matrix(70, 100, 7);
  matrix::Matrix c(52, 100, 0.0);
  auto live_scheduler = sched::make_oddoml(plat, part);
  const ExecutorReport report =
      execute_online(live_scheduler, plat, part, a, b, c);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.result.decisions, sim_result.decisions);
}

// ---- failure paths ---------------------------------------------------------

TEST(OnlineRuntime, WorkerExceptionPropagatesToMaster) {
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 8);
  const auto b = random_matrix(40, 40, 9);
  matrix::Matrix c(40, 40, 0.0);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.fault_hook = [](int worker, std::size_t step) {
    if (worker == 1 && step == 2)
      throw std::runtime_error("injected worker fault");
  };
  try {
    execute_online(scheduler, plat, part, a, b, c, options);
    FAIL() << "expected the injected worker fault to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("injected worker fault"),
              std::string::npos);
  }
  // The run failed cleanly: all threads joined, so a second run on the
  // same data works.
  auto retry = sched::make_oddoml(plat, part);
  const ExecutorReport report = execute_online(retry, plat, part, a, b, c);
  EXPECT_TRUE(report.verified);
}

TEST(OnlineRuntime, VerificationFailureThrowsAsDocumented) {
  const matrix::Partition part(24, 24, 24, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.002, 60);
  const auto a = random_matrix(24, 24, 10);
  const auto b = random_matrix(24, 24, 11);
  matrix::Matrix c(24, 24, 1.0);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.tolerance = -1.0;  // nothing can pass: |error| >= 0 > tolerance
  EXPECT_THROW(execute_online(scheduler, plat, part, a, b, c, options),
               std::runtime_error);
}

// ---- the same RunResult shape through core, on either backend --------------

TEST(OnlineRuntime, CoreRunsCellsOnEitherBackend) {
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  const core::RunReport simulated = core::run_algorithm("ORROML", plat, part);
  core::OnlineOptions online;
  online.data_seed = 7;
  const core::RunReport executed =
      core::run_algorithm_online("ORROML", plat, part, online);

  EXPECT_EQ(simulated.backend, core::Backend::kSim);
  EXPECT_EQ(executed.backend, core::Backend::kOnline);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_GT(executed.online_wall_seconds, 0.0);
  // Deterministic policy: identical decisions, identical projection.
  EXPECT_DOUBLE_EQ(executed.result.makespan, simulated.result.makespan);
  EXPECT_EQ(executed.result.decisions, simulated.result.decisions);

  // The experiment grid accepts the backend switch.
  core::ExperimentOptions grid;
  grid.threads = 1;
  grid.backend = core::Backend::kOnline;
  grid.online.data_seed = 7;
  const auto results = core::run_experiment(
      {core::Instance{"cell", plat, part}}, {"ORROML", "ODDOML"}, grid);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].cell_ok(0));
  EXPECT_TRUE(results[0].cell_ok(1));
  EXPECT_DOUBLE_EQ(results[0].reports[0].result.makespan,
                   simulated.result.makespan);
}

}  // namespace
}  // namespace hmxp::runtime

// ---- dynamic perturbation on the simulator backend -------------------------

namespace hmxp::sim {
namespace {

TEST(SimPerturbation, SlowdownScheduleStretchesMakespan) {
  // Compute-bound instance (w >> c), so a mid-run compute slowdown must
  // show up in the makespan, not hide in the port's shadow.
  const matrix::Partition part(96, 64, 160, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.001, 0.02, 40);

  auto baseline_scheduler = sched::make_oddoml(plat, part);
  const RunResult baseline = simulate(baseline_scheduler, plat, part);

  platform::SlowdownSchedule schedule;
  schedule.add(/*worker=*/0, /*at=*/baseline.makespan * 0.25, /*factor=*/10.0);
  schedule.add(/*worker=*/1, /*at=*/baseline.makespan * 0.25, /*factor=*/10.0);
  auto perturbed_scheduler = sched::make_oddoml(plat, part);
  const RunResult perturbed =
      simulate(perturbed_scheduler, plat, part, schedule,
               /*record_trace=*/true);

  EXPECT_GT(perturbed.makespan, baseline.makespan);
  // The perturbed run is still a valid one-port schedule.
  EXPECT_TRUE(perturbed.trace.one_port_respected());
  EXPECT_TRUE(perturbed.trace.compute_serialized());
}

TEST(SimPerturbation, FactorLookupIsPiecewiseConstant) {
  platform::SlowdownSchedule schedule;
  schedule.add(0, 10.0, 4.0);
  schedule.add(0, 20.0, 0.5);
  schedule.add(1, 15.0, 2.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 19.9), 4.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 25.0), 0.5);
  EXPECT_DOUBLE_EQ(schedule.factor(1, 14.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.factor(1, 16.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.factor(2, 100.0), 1.0);
  EXPECT_THROW(schedule.add(0, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(schedule.add(0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(schedule.add(-1, 1.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::sim
