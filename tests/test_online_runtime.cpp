// Tests for the online execution backend: live demand-driven scheduling
// on a heterogeneous (and mid-run-perturbed) platform, sim-vs-runtime
// decision parity, worker-exception propagation, the verification
// failure path, the dynamic-perturbation hook on the simulator side,
// EWMA speed calibration on both backends, bandwidth (c_i) perturbation
// parity through the throttled channel, and the mid-idle worker-death
// regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/experiment.hpp"
#include "core/run.hpp"
#include "platform/calibration.hpp"
#include "platform/perturbation.hpp"
#include "runtime/executor.hpp"
#include "sched/demand_driven.hpp"
#include "sched/registry.hpp"
#include "sched/round_robin.hpp"
#include "util/rng.hpp"

namespace hmxp::runtime {
namespace {

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- live demand-driven on a heterogeneous, time-varying platform ----------

TEST(OnlineRuntime, DemandDrivenHeterogeneousSlowdownVerifies) {
  // Odd sizes exercise edge blocks; static slowdowns make the workers
  // really heterogeneous and a perturbation flips the balance mid-run.
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 30, "small"},
      {0.01, 0.002, 60, "mid"},
      {0.005, 0.001, 140, "big"},
  };
  const platform::Platform plat("hetero", specs);
  const auto a = random_matrix(52, 70, 1);
  const auto b = random_matrix(70, 100, 2);
  matrix::Matrix c = random_matrix(52, 100, 3);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.compute_slowdown = {1, 3, 2};
  // Mid-run (wall clock) the big worker slows 8x and the small one
  // recovers; the scheduler only sees this through actual completions.
  options.perturbation.add(/*worker=*/2, /*at=*/0.002, /*factor=*/8.0);
  options.perturbation.add(/*worker=*/1, /*at=*/0.004, /*factor=*/0.5);

  const ExecutorReport report =
      execute_online(scheduler, plat, part, a, b, c, options);

  EXPECT_TRUE(report.verified);
  EXPECT_LT(report.max_abs_error, 1e-10);
  EXPECT_EQ(report.updates_performed, 7u * 13u * 9u);
  // The report carries the simulator-shaped RunResult.
  EXPECT_EQ(report.result.scheduler_name, "ODDOML");
  EXPECT_GT(report.result.makespan, 0.0);
  EXPECT_GT(report.result.decisions, 0u);
  EXPECT_EQ(report.result.updates,
            static_cast<model::BlockCount>(7 * 13 * 9));
  EXPECT_GE(report.result.workers_enrolled, 2);
}

// ---- pooled data plane: no per-step heap allocation -------------------------

TEST(OnlineRuntime, SteadyStateMasterLoopDoesNotAllocatePerStep) {
  // Two runs over the same platform where the second has twice the
  // inner (k) extent, i.e. twice the operand steps. With the pooled
  // data plane, buffer-pool ALLOCATIONS are a warm-up constant set by
  // the number of distinct payload shapes in flight -- they must not
  // scale with the number of scheduled steps, while acquires do.
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto run = [&plat](std::size_t n_ab) {
    const matrix::Partition part(40, n_ab, 48, 8);
    const auto a = random_matrix(40, n_ab, 21);
    const auto b = random_matrix(n_ab, 48, 22);
    matrix::Matrix c(40, 48, 0.0);
    auto scheduler = sched::make_oddoml(plat, part);
    ExecutorOptions options;
    options.verify = false;
    return execute_online(scheduler, plat, part, a, b, c, options);
  };

  const ExecutorReport base = run(64);
  const ExecutorReport doubled = run(128);

  const BufferPool::Stats& s1 = base.buffer_pool;
  const BufferPool::Stats& s2 = doubled.buffer_pool;
  // Twice the steps really happened...
  EXPECT_GT(doubled.updates_performed, base.updates_performed);
  EXPECT_GT(s2.acquires, s1.acquires + s1.acquires / 2);
  // ...but the heap was only touched during warm-up: every steady-state
  // checkout was served by recycling. Allocations are bounded by the
  // worst-case in-flight buffer population (workers x bounded-inbox
  // messages x payloads per message, ~30 here -- a bound set by channel
  // capacities and independent of master/worker interleaving), never by
  // the step count: a per-step allocator would be in the hundreds on
  // the doubled run (2 operand buffers per SendAB alone).
  EXPECT_EQ(s1.allocations + s1.reuses, s1.acquires);
  EXPECT_EQ(s2.allocations + s2.reuses, s2.acquires);
  EXPECT_LE(s1.allocations, 48u);
  EXPECT_LE(s2.allocations, 48u);
  // Equivalently from the recycling side: at most the warm-up
  // population ever came from the heap. (A fixed 3/4 reuse RATIO would
  // overclaim here -- when contention keeps more buffers in flight the
  // ratio dips while the allocation bound still holds, which is the
  // invariant that actually matters.)
  EXPECT_GE(s2.reuses + 48u, s2.acquires);
}

// ---- sim vs runtime decision parity ----------------------------------------

TEST(OnlineRuntime, DecisionSequenceParityForDeterministicPolicy) {
  // Round-robin decides from progress structure only (never from
  // times), so the live runtime must reproduce the simulator's decision
  // sequence exactly -- even on a heterogeneous platform.
  const matrix::Partition part(96, 64, 160, 8);
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 21, "tiny"},
      {0.01, 0.001, 60, "small"},
      {0.005, 0.002, 140, "big"},
  };
  const platform::Platform plat("hetero", specs);

  auto sim_scheduler = sched::make_orroml(plat, part);
  std::vector<sim::Decision> simulated;
  const sim::RunResult sim_result =
      sim::simulate(sim_scheduler, plat, part, false, &simulated);

  const auto a = random_matrix(96, 64, 4);
  const auto b = random_matrix(64, 160, 5);
  matrix::Matrix c(96, 160, 0.25);
  auto live_scheduler = sched::make_orroml(plat, part);
  std::vector<sim::Decision> live;
  const ExecutorReport report =
      execute_online(live_scheduler, plat, part, a, b, c, {}, &live);

  EXPECT_EQ(report.result.decisions, sim_result.decisions);
  ASSERT_EQ(live.size(), simulated.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].comm, simulated[i].comm) << "decision " << i;
    EXPECT_EQ(live[i].worker, simulated[i].worker) << "decision " << i;
  }
  // Same decisions -> same model projection.
  EXPECT_DOUBLE_EQ(report.result.makespan, sim_result.makespan);
  EXPECT_EQ(report.result.comm_blocks, sim_result.comm_blocks);
}

TEST(OnlineRuntime, DecisionCountParityDemandDrivenHomogeneous) {
  // Demand-driven may reorder online (actual completions beat model
  // projections), but on a homogeneous platform every carve has the
  // same width, so the decision COUNT is order-invariant.
  const matrix::Partition part(52, 70, 100, 8);
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);

  auto sim_scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult sim_result = sim::simulate(sim_scheduler, plat, part);

  const auto a = random_matrix(52, 70, 6);
  const auto b = random_matrix(70, 100, 7);
  matrix::Matrix c(52, 100, 0.0);
  auto live_scheduler = sched::make_oddoml(plat, part);
  const ExecutorReport report =
      execute_online(live_scheduler, plat, part, a, b, c);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.result.decisions, sim_result.decisions);
}

// ---- online calibration -----------------------------------------------------

TEST(Calibration, EwmaConvergesToSteppedChangeWithinBoundedObservations) {
  platform::SpeedEstimate estimate;
  EXPECT_FALSE(estimate.calibrated());
  EXPECT_DOUBLE_EQ(estimate.drift(), 1.0);
  EXPECT_DOUBLE_EQ(estimate.value_or(0.007), 0.007);

  // Steady observations: the estimate IS the observation, drift 1.
  for (int i = 0; i < 5; ++i) estimate.observe(0.002, 0.25);
  EXPECT_DOUBLE_EQ(estimate.value_or(0.007), 0.002);
  EXPECT_DOUBLE_EQ(estimate.drift(), 1.0);

  // Stepped 2x slowdown: with alpha = 0.25 the EWMA covers 95% of the
  // step within 11 observations (1 - 0.75^11 > 0.95) -- a BOUNDED
  // number, which is what makes mid-run adaptation possible at all.
  for (int i = 0; i < 11; ++i) estimate.observe(0.004, 0.25);
  EXPECT_GT(estimate.value_or(0.0), 0.002 + 0.95 * 0.002);
  EXPECT_LE(estimate.value_or(0.0), 0.004);
  EXPECT_NEAR(estimate.drift(), 2.0, 0.1);
}

TEST(Calibration, EngineCalibratedSpeedTracksGroundTruthSlowdown) {
  // The engine observes every projected step, so after a from-the-start
  // 3x slowdown its calibrated w sits at exactly 3 w_i while the
  // untouched worker stays at w_i. Drift is measured against the run's
  // OWN first observation, so an always-slow worker reads as drift 1 --
  // drift flags change, calibrated_w carries the absolute estimate.
  const matrix::Partition part(52, 70, 100, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.001, 0.01, 40);
  platform::SlowdownSchedule slowdown;
  slowdown.add(/*worker=*/1, /*at=*/0.0, /*factor=*/3.0);

  sim::Engine engine(sim::InstanceContext::make(plat, part, slowdown),
                     /*record_trace=*/false);
  auto scheduler = sched::make_oddoml(plat, part);
  sim::run(scheduler, engine);

  EXPECT_DOUBLE_EQ(engine.calibrated_w(0), 0.01);
  EXPECT_NEAR(engine.calibrated_w(1), 0.03, 1e-9);
  EXPECT_DOUBLE_EQ(engine.observed_drift(0), 1.0);
  EXPECT_NEAR(engine.observed_drift(1), 1.0, 1e-9);
}

TEST(Calibration, EngineDriftDetectsMidRunSlowdown) {
  // A slowdown that hits MID-run moves the EWMA off its baseline: the
  // drift converges toward the true factor as post-change observations
  // accumulate (bounded-observation convergence, engine edition).
  const matrix::Partition part(52, 70, 100, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.001, 0.01, 40);

  auto probe = sched::make_oddoml(plat, part);
  const sim::RunResult baseline = sim::simulate(probe, plat, part);

  platform::SlowdownSchedule slowdown;
  slowdown.add(/*worker=*/1, baseline.makespan * 0.4, /*factor=*/3.0);
  sim::Engine engine(sim::InstanceContext::make(plat, part, slowdown),
                     /*record_trace=*/false);
  auto scheduler = sched::make_oddoml(plat, part);
  sim::run(scheduler, engine);

  EXPECT_DOUBLE_EQ(engine.observed_drift(0), 1.0);
  EXPECT_GT(engine.observed_drift(1), 2.0);
  EXPECT_GT(engine.calibrated_w(1), 0.02);
  EXPECT_LE(engine.calibrated_w(1), 0.03 + 1e-12);
}

TEST(Calibration, SimAndOnlineCalibratedEstimatesAgreeOnDeterministicPlatform) {
  // On a deterministic (unperturbed) platform both backends must settle
  // on "no drift": the simulator exactly (its observations ARE the
  // model costs), the runtime within the jitter of real step timings.
  const matrix::Partition part(52, 70, 100, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  sim::Engine engine(plat, part);
  auto sim_scheduler = sched::make_oddoml(plat, part);
  sim::run(sim_scheduler, engine);
  for (int w = 0; w < plat.size(); ++w) {
    EXPECT_DOUBLE_EQ(engine.calibrated_w(w), plat.worker(w).w);
    EXPECT_DOUBLE_EQ(engine.observed_drift(w), 1.0);
  }

  // The online half measures real wall clocks, so give it chunky steps
  // (32x32 blocks, several updates per step) that dwarf timer jitter,
  // and smooth hard.
  const matrix::Partition online_part(96, 128, 192, 32);  // r=3, t=4, s=6
  const auto online_plat =
      platform::Platform::homogeneous(3, 0.01, 0.002, 20);
  const auto a = random_matrix(96, 128, 31);
  const auto b = random_matrix(128, 192, 32);
  matrix::Matrix c(96, 192, 0.0);
  auto live_scheduler = sched::make_oddoml(online_plat, online_part);
  ExecutorOptions options;
  options.verify = false;
  options.calibration.alpha = 0.1;
  const ExecutorReport report = execute_online(live_scheduler, online_plat,
                                               online_part, a, b, c, options);
  ASSERT_EQ(report.observed_drift.size(), static_cast<std::size_t>(3));
  // Wall clocks on a loaded CI machine can drift globally (sanitizer
  // runs, parallel tests), so the robust agreement statement is
  // cross-worker: equal workers share the machine's noise, so no
  // worker may read several times slower than its peers -- which is
  // exactly what the injected per-worker slowdowns elsewhere do read
  // as. A wide absolute band still catches unit mistakes.
  const auto [lo_it, hi_it] = std::minmax_element(
      report.observed_drift.begin(), report.observed_drift.end());
  EXPECT_LT(*hi_it / *lo_it, 4.0);
  EXPECT_GT(*lo_it, 0.05);
  EXPECT_LT(*hi_it, 20.0);
}

// ---- bandwidth (c_i) perturbation -------------------------------------------

TEST(BandwidthPerturbation, SimulatorStretchesMakespanOnSlowedLink) {
  // Communication-bound instance: slowing one worker's link 8x must
  // stretch the makespan, exactly like the compute perturbation does.
  const matrix::Partition part(96, 64, 160, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.02, 0.001, 40);

  auto baseline_scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult baseline = sim::simulate(baseline_scheduler, plat, part);

  platform::SlowdownSchedule schedule;
  schedule.add_bandwidth(/*worker=*/0, /*at=*/0.0, /*factor=*/8.0);
  EXPECT_TRUE(schedule.has_bandwidth_events());
  // Bandwidth events leave the compute factor untouched and vice versa.
  EXPECT_DOUBLE_EQ(schedule.factor(0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.bandwidth_factor(0, 1.0), 8.0);

  auto perturbed_scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult perturbed = sim::simulate(
      perturbed_scheduler, plat, part, schedule, /*record_trace=*/true);
  EXPECT_GT(perturbed.makespan, baseline.makespan);
  EXPECT_TRUE(perturbed.trace.one_port_respected());
  EXPECT_TRUE(perturbed.trace.compute_serialized());
}

TEST(BandwidthPerturbation, ThrottledRuntimeChannelMatchesSimOrdering) {
  // The same c_i experiment on real threads: the master's throttled
  // channel charges wall time per block, scaled by the drifting
  // bandwidth factor -- so the slowed-link run must take longer on the
  // wall too, giving matching makespan ordering across backends.
  const matrix::Partition part(40, 48, 64, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 48, 41);
  const auto b = random_matrix(48, 64, 42);

  const auto wall_with = [&](double factor) {
    matrix::Matrix c(40, 64, 0.0);
    auto scheduler = sched::make_oddoml(plat, part);
    ExecutorOptions options;
    options.verify = false;
    options.throttle_block_seconds = 2e-4;
    if (factor > 1.0) {
      options.perturbation.add_bandwidth(0, 0.0, factor);
      options.perturbation.add_bandwidth(1, 0.0, factor);
    }
    return execute_online(scheduler, plat, part, a, b, c, options)
        .wall_seconds;
  };

  const double nominal = wall_with(1.0);
  const double slowed = wall_with(6.0);
  EXPECT_GT(slowed, nominal);
}

// ---- failure paths ---------------------------------------------------------

TEST(OnlineRuntime, MidIdleWorkerDeathSurfacesInsteadOfHanging) {
  // Regression for the silent-abort path: a worker that dies BETWEEN
  // steps (here: on receiving its first message, before any compute)
  // used to leave the master waiting on completions that could never
  // arrive. Failure detection is eager now -- the run must either
  // throw (strict mode) or recover (tolerant mode + FT policy), never
  // hang.
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 51);
  const auto b = random_matrix(40, 40, 52);

  {  // strict mode: the scheduled fault propagates as the root cause
    matrix::Matrix c(40, 40, 0.0);
    auto scheduler = sched::make_oddoml(plat, part);
    ExecutorOptions options;
    options.faults.add(/*worker=*/1, /*at=*/0.0);
    try {
      execute_online(scheduler, plat, part, a, b, c, options);
      FAIL() << "expected the scheduled fault to propagate";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("scheduled fault"),
                std::string::npos);
    }
  }
  {  // tolerant mode: the FT policy finishes on the survivors
    matrix::Matrix c(40, 40, 0.0);
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.faults.add(/*worker=*/1, /*at=*/0.0);
    options.tolerate_faults = true;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 1);
  }
}

TEST(OnlineRuntime, WorkerExceptionPropagatesToMaster) {
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 8);
  const auto b = random_matrix(40, 40, 9);
  matrix::Matrix c(40, 40, 0.0);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.fault_hook = [](int worker, std::size_t step) {
    if (worker == 1 && step == 2)
      throw std::runtime_error("injected worker fault");
  };
  try {
    execute_online(scheduler, plat, part, a, b, c, options);
    FAIL() << "expected the injected worker fault to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("injected worker fault"),
              std::string::npos);
  }
  // The run failed cleanly: all threads joined, so a second run on the
  // same data works.
  auto retry = sched::make_oddoml(plat, part);
  const ExecutorReport report = execute_online(retry, plat, part, a, b, c);
  EXPECT_TRUE(report.verified);
}

TEST(OnlineRuntime, VerificationFailureThrowsAsDocumented) {
  const matrix::Partition part(24, 24, 24, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.002, 60);
  const auto a = random_matrix(24, 24, 10);
  const auto b = random_matrix(24, 24, 11);
  matrix::Matrix c(24, 24, 1.0);

  auto scheduler = sched::make_oddoml(plat, part);
  ExecutorOptions options;
  options.tolerance = -1.0;  // nothing can pass: |error| >= 0 > tolerance
  EXPECT_THROW(execute_online(scheduler, plat, part, a, b, c, options),
               std::runtime_error);
}

// ---- the same RunResult shape through core, on either backend --------------

TEST(OnlineRuntime, CoreRunsCellsOnEitherBackend) {
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  const core::RunReport simulated = core::run_algorithm("ORROML", plat, part);
  core::OnlineOptions online;
  online.data_seed = 7;
  const core::RunReport executed =
      core::run_algorithm_online("ORROML", plat, part, online);

  EXPECT_EQ(simulated.backend, core::Backend::kSim);
  EXPECT_EQ(executed.backend, core::Backend::kOnline);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_GT(executed.online_wall_seconds, 0.0);
  // Deterministic policy: identical decisions, identical projection.
  EXPECT_DOUBLE_EQ(executed.result.makespan, simulated.result.makespan);
  EXPECT_EQ(executed.result.decisions, simulated.result.decisions);

  // The experiment grid accepts the backend switch.
  core::ExperimentOptions grid;
  grid.threads = 1;
  grid.backend = core::Backend::kOnline;
  grid.online.data_seed = 7;
  const auto results = core::run_experiment(
      {core::Instance{"cell", plat, part}}, {"ORROML", "ODDOML"}, grid);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].cell_ok(0));
  EXPECT_TRUE(results[0].cell_ok(1));
  EXPECT_DOUBLE_EQ(results[0].reports[0].result.makespan,
                   simulated.result.makespan);
}

}  // namespace
}  // namespace hmxp::runtime

// ---- dynamic perturbation on the simulator backend -------------------------

namespace hmxp::sim {
namespace {

TEST(SimPerturbation, SlowdownScheduleStretchesMakespan) {
  // Compute-bound instance (w >> c), so a mid-run compute slowdown must
  // show up in the makespan, not hide in the port's shadow.
  const matrix::Partition part(96, 64, 160, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.001, 0.02, 40);

  auto baseline_scheduler = sched::make_oddoml(plat, part);
  const RunResult baseline = simulate(baseline_scheduler, plat, part);

  platform::SlowdownSchedule schedule;
  schedule.add(/*worker=*/0, /*at=*/baseline.makespan * 0.25, /*factor=*/10.0);
  schedule.add(/*worker=*/1, /*at=*/baseline.makespan * 0.25, /*factor=*/10.0);
  auto perturbed_scheduler = sched::make_oddoml(plat, part);
  const RunResult perturbed =
      simulate(perturbed_scheduler, plat, part, schedule,
               /*record_trace=*/true);

  EXPECT_GT(perturbed.makespan, baseline.makespan);
  // The perturbed run is still a valid one-port schedule.
  EXPECT_TRUE(perturbed.trace.one_port_respected());
  EXPECT_TRUE(perturbed.trace.compute_serialized());
}

TEST(SimPerturbation, FactorLookupIsPiecewiseConstant) {
  platform::SlowdownSchedule schedule;
  schedule.add(0, 10.0, 4.0);
  schedule.add(0, 20.0, 0.5);
  schedule.add(1, 15.0, 2.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 19.9), 4.0);
  EXPECT_DOUBLE_EQ(schedule.factor(0, 25.0), 0.5);
  EXPECT_DOUBLE_EQ(schedule.factor(1, 14.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.factor(1, 16.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.factor(2, 100.0), 1.0);
  EXPECT_THROW(schedule.add(0, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(schedule.add(0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(schedule.add(-1, 1.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::sim
