// Tests for the Figure 1 block decomposition.
#include <gtest/gtest.h>

#include "matrix/partition.hpp"

namespace hmxp::matrix {
namespace {

TEST(Partition, PaperDimensions) {
  // A 8000x8000, B 8000x80000, q = 80: r = t = 100, s = 1000.
  const Partition part(8000, 8000, 80000, 80);
  EXPECT_EQ(part.r(), 100u);
  EXPECT_EQ(part.t(), 100u);
  EXPECT_EQ(part.s(), 1000u);
  EXPECT_EQ(part.c_blocks(), 100000u);
  EXPECT_EQ(part.total_updates(), 10000000u);
}

TEST(Partition, EdgeBlocksAreShort) {
  const Partition part(50, 70, 100, 8);  // r=7, t=9, s=13
  EXPECT_EQ(part.r(), 7u);
  EXPECT_EQ(part.t(), 9u);
  EXPECT_EQ(part.s(), 13u);
  EXPECT_EQ(part.row_size(0), 8u);
  EXPECT_EQ(part.row_size(6), 2u);   // 50 - 48
  EXPECT_EQ(part.inner_size(8), 6u); // 70 - 64
  EXPECT_EQ(part.col_size(12), 4u);  // 100 - 96
  EXPECT_EQ(part.row_begin(6), 48u);
  EXPECT_EQ(part.inner_begin(8), 64u);
  EXPECT_EQ(part.col_begin(12), 96u);
}

TEST(Partition, ExactlyDivisible) {
  const Partition part(64, 32, 16, 8);
  for (std::size_t i = 0; i < part.r(); ++i) EXPECT_EQ(part.row_size(i), 8u);
  for (std::size_t k = 0; k < part.t(); ++k) EXPECT_EQ(part.inner_size(k), 8u);
  for (std::size_t j = 0; j < part.s(); ++j) EXPECT_EQ(part.col_size(j), 8u);
}

TEST(Partition, FromBlocks) {
  const Partition part = Partition::from_blocks(10, 20, 30, 80);
  EXPECT_EQ(part.r(), 10u);
  EXPECT_EQ(part.t(), 20u);
  EXPECT_EQ(part.s(), 30u);
  EXPECT_EQ(part.n_a(), 800u);
  EXPECT_EQ(part.n_ab(), 1600u);
  EXPECT_EQ(part.n_b(), 2400u);
  EXPECT_EQ(part.row_size(9), 80u);
}

TEST(Partition, RejectsDegenerateInput) {
  EXPECT_THROW(Partition(0, 8, 8, 8), std::invalid_argument);
  EXPECT_THROW(Partition(8, 8, 8, 0), std::invalid_argument);
  EXPECT_THROW(Partition::from_blocks(0, 1, 1, 8), std::invalid_argument);
}

TEST(Partition, IndexGuards) {
  const Partition part(16, 16, 16, 8);
  EXPECT_THROW(part.row_size(2), std::invalid_argument);
  EXPECT_THROW(part.col_begin(2), std::invalid_argument);
  EXPECT_THROW(part.inner_size(2), std::invalid_argument);
}

TEST(BlockRect, GeometryHelpers) {
  const BlockRect rect{2, 5, 1, 4};
  EXPECT_EQ(rect.rows(), 3u);
  EXPECT_EQ(rect.cols(), 3u);
  EXPECT_EQ(rect.count(), 9u);
  EXPECT_FALSE(rect.empty());
  EXPECT_TRUE(rect.contains({2, 1}));
  EXPECT_TRUE(rect.contains({4, 3}));
  EXPECT_FALSE(rect.contains({5, 1}));
  EXPECT_FALSE(rect.contains({2, 4}));
  EXPECT_TRUE(rect.overlaps(BlockRect{4, 6, 3, 5}));
  EXPECT_FALSE(rect.overlaps(BlockRect{5, 6, 1, 4}));
  EXPECT_EQ(rect.to_string(), "[2,5)x[1,4)");
  EXPECT_TRUE((BlockRect{3, 3, 0, 2}).empty());
}

TEST(ChunkCount, CountsCeilDivision) {
  EXPECT_EQ(chunk_count(100, 800, 89), 2u * 9u);
  EXPECT_EQ(chunk_count(10, 10, 10), 1u);
  EXPECT_EQ(chunk_count(11, 10, 10), 2u);
  EXPECT_THROW(chunk_count(10, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::matrix
