// Tests for platform specs, calibration and the section 6 generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "platform/calibration.hpp"
#include "platform/generator.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace hmxp::platform {
namespace {

TEST(Calibration, BlockBytes) {
  CalibrationConstants constants;  // q = 80, doubles
  EXPECT_EQ(block_bytes(constants), 51200u);
}

TEST(Calibration, CommSeconds) {
  CalibrationConstants constants;
  // 51200 bytes * 8 bits / 100e6 bps = 4.096 ms.
  EXPECT_NEAR(block_comm_seconds(100.0, constants), 4.096e-3, 1e-9);
  EXPECT_NEAR(block_comm_seconds(10.0, constants), 40.96e-3, 1e-9);
  EXPECT_THROW(block_comm_seconds(0.0, constants), std::invalid_argument);
}

TEST(Calibration, UpdateSeconds) {
  CalibrationConstants constants;
  // 2 * 80^3 flops at 1.5 GFlop/s.
  EXPECT_NEAR(block_update_seconds(1.5, constants), 2.0 * 512000 / 1.5e9,
              1e-12);
}

TEST(Calibration, MemoryBlocks) {
  CalibrationConstants constants;
  // 512 MiB * 0.8 / 51200 B.
  const auto blocks = memory_blocks(512.0, 0.8, constants);
  EXPECT_EQ(blocks, static_cast<model::BlockCount>(
                        std::floor(512.0 * 1024 * 1024 * 0.8 / 51200.0)));
  EXPECT_THROW(memory_blocks(512.0, 0.0, constants), std::invalid_argument);
  EXPECT_THROW(memory_blocks(512.0, 1.5, constants), std::invalid_argument);
}

TEST(Platform, WorkerLayoutSides) {
  const WorkerSpec worker{0.004, 0.0004, 8388, "test"};
  EXPECT_EQ(worker.mu(), model::double_buffered_mu(8388));
  EXPECT_EQ(worker.beta(), model::toledo_beta(8388));
  EXPECT_GT(worker.mu(), worker.beta());
}

TEST(Platform, HomogeneousConstruction) {
  const Platform plat = Platform::homogeneous(4, 0.01, 0.001, 100);
  EXPECT_EQ(plat.size(), 4);
  EXPECT_TRUE(plat.is_homogeneous());
  EXPECT_EQ(plat.worker(3).m, 100);
  EXPECT_THROW(plat.worker(4), std::invalid_argument);
  EXPECT_THROW(Platform::homogeneous(0, 0.01, 0.001, 100),
               std::invalid_argument);
}

TEST(Platform, RejectsTinyMemory) {
  EXPECT_THROW(Platform("bad", {WorkerSpec{0.01, 0.001, 4, ""}}),
               std::invalid_argument);
}

TEST(Platform, SubsetPreservesOriginalIndices) {
  Platform plat = hetero_memory();
  const Platform sub = plat.subset({5, 2, 7}, "sub");
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.original_index(0), 5);
  EXPECT_EQ(sub.original_index(2), 7);
  EXPECT_EQ(sub.worker(1), plat.worker(2));
  EXPECT_THROW(plat.subset({}, "empty"), std::invalid_argument);
  EXPECT_THROW(plat.subset({99}, "oob"), std::invalid_argument);
}

TEST(Generators, HeteroMemoryShape) {
  const Platform plat = hetero_memory();
  ASSERT_EQ(plat.size(), 8);
  // Uniform c and w; memories in a 2-4-2 split of 3 sizes.
  std::set<model::BlockCount> memories;
  for (const WorkerSpec& worker : plat.workers()) {
    EXPECT_DOUBLE_EQ(worker.c, plat.worker(0).c);
    EXPECT_DOUBLE_EQ(worker.w, plat.worker(0).w);
    memories.insert(worker.m);
  }
  EXPECT_EQ(memories.size(), 3u);
  EXPECT_FALSE(plat.is_homogeneous());
  // 1 GiB holds 4x the blocks of 256 MiB (up to floor rounding).
  EXPECT_NEAR(static_cast<double>(plat.worker(7).m) /
                  static_cast<double>(plat.worker(0).m),
              4.0, 0.01);
}

TEST(Generators, HeteroLinksShape) {
  const Platform plat = hetero_links();
  ASSERT_EQ(plat.size(), 8);
  std::set<double> costs;
  for (const WorkerSpec& worker : plat.workers()) {
    EXPECT_EQ(worker.m, plat.worker(0).m);
    EXPECT_DOUBLE_EQ(worker.w, plat.worker(0).w);
    costs.insert(worker.c);
  }
  EXPECT_EQ(costs.size(), 3u);
  // Paper's 10:5:1 bandwidth ratios -> 1:2:10 cost ratios.
  EXPECT_NEAR(plat.worker(7).c / plat.worker(0).c, 10.0, 1e-9);
  EXPECT_NEAR(plat.worker(3).c / plat.worker(0).c, 2.0, 1e-9);
}

TEST(Generators, HeteroComputeShape) {
  const Platform plat = hetero_compute();
  ASSERT_EQ(plat.size(), 8);
  // S, S/2, S/4 -> w ratios 1:2:4.
  EXPECT_NEAR(plat.worker(7).w / plat.worker(0).w, 4.0, 1e-9);
  EXPECT_NEAR(plat.worker(2).w / plat.worker(0).w, 2.0, 1e-9);
  for (const WorkerSpec& worker : plat.workers())
    EXPECT_DOUBLE_EQ(worker.c, plat.worker(0).c);
}

TEST(Generators, FullyHeteroEnumeratesOctants) {
  const Platform plat = fully_hetero(2.0);
  ASSERT_EQ(plat.size(), 8);
  std::set<std::tuple<double, double, model::BlockCount>> distinct;
  for (const WorkerSpec& worker : plat.workers())
    distinct.insert({worker.c, worker.w, worker.m});
  EXPECT_EQ(distinct.size(), 8u);  // every combination distinct
  EXPECT_THROW(fully_hetero(0.5), std::invalid_argument);
}

TEST(Generators, FullyHeteroRatioControlsSpread) {
  for (const double ratio : {2.0, 4.0}) {
    const Platform plat = fully_hetero(ratio);
    double c_min = 1e9, c_max = 0;
    for (const WorkerSpec& worker : plat.workers()) {
      c_min = std::min(c_min, worker.c);
      c_max = std::max(c_max, worker.c);
    }
    EXPECT_NEAR(c_max / c_min, ratio, 1e-9);
  }
}

TEST(Generators, RandomPlatformWithinRatioFour) {
  util::Rng rng(2024);
  for (int round = 0; round < 10; ++round) {
    const Platform plat = random_platform(rng);
    ASSERT_EQ(plat.size(), 8);
    double c_min = 1e18, c_max = 0, w_min = 1e18, w_max = 0;
    model::BlockCount m_min = 1LL << 60, m_max = 0;
    for (const WorkerSpec& worker : plat.workers()) {
      c_min = std::min(c_min, worker.c);
      c_max = std::max(c_max, worker.c);
      w_min = std::min(w_min, worker.w);
      w_max = std::max(w_max, worker.w);
      m_min = std::min(m_min, worker.m);
      m_max = std::max(m_max, worker.m);
    }
    EXPECT_LE(c_max / c_min, 4.0 + 1e-9);
    EXPECT_LE(w_max / w_min, 4.0 + 1e-9);
    EXPECT_LE(static_cast<double>(m_max) / static_cast<double>(m_min),
              4.0 + 1e-6);
  }
}

TEST(Generators, RealPlatformsMatchSection63) {
  const Platform aug = real_platform_aug2007();
  const Platform nov = real_platform_nov2006();
  ASSERT_EQ(aug.size(), 20);
  ASSERT_EQ(nov.size(), 20);
  // Aug 2007: uniform memory; Nov 2006: two groups of five at 256 MiB.
  std::set<model::BlockCount> aug_mem, nov_mem;
  for (const WorkerSpec& worker : aug.workers()) aug_mem.insert(worker.m);
  for (const WorkerSpec& worker : nov.workers()) nov_mem.insert(worker.m);
  EXPECT_EQ(aug_mem.size(), 1u);
  EXPECT_EQ(nov_mem.size(), 2u);
  int small = 0;
  for (const WorkerSpec& worker : nov.workers())
    if (worker.m == *nov_mem.begin()) ++small;
  EXPECT_EQ(small, 10);  // 5 + 5 nodes still at 256 MiB
  // Four speed groups in both configurations.
  std::set<double> speeds;
  for (const WorkerSpec& worker : aug.workers()) speeds.insert(worker.w);
  EXPECT_EQ(speeds.size(), 3u);  // 2.4 appears twice (P4 and Xeon)
}

TEST(Platform, SteadyWorkersConversion) {
  const Platform plat = hetero_memory();
  const auto steady = plat.steady_workers();
  ASSERT_EQ(steady.size(), 8u);
  for (int i = 0; i < plat.size(); ++i) {
    EXPECT_DOUBLE_EQ(steady[static_cast<std::size_t>(i)].c, plat.worker(i).c);
    EXPECT_EQ(steady[static_cast<std::size_t>(i)].mu, plat.worker(i).mu());
  }
}

TEST(Platform, ToStringMentionsEveryWorker) {
  const Platform plat = hetero_links();
  const std::string text = plat.to_string();
  EXPECT_NE(text.find("P1"), std::string::npos);
  EXPECT_NE(text.find("P8"), std::string::npos);
  EXPECT_NE(text.find("mu="), std::string::npos);
}

}  // namespace
}  // namespace hmxp::platform
