// Tests for the process transport: frame serialization round-trips,
// cross-transport parity (thread vs process backends produce identical
// decision sequences and bit-for-bit identical C for every registered
// scheduler), SIGKILL'd worker processes as recoverable first-class
// failures, kernel-tier propagation into forked workers, and the core
// facade's Backend::kProcess plumbing.
//
// The whole suite (minus the in-process serde tests) forks worker
// processes, which ThreadSanitizer's runtime does not support in a
// multithreaded parent: under TSan these tests SKIP explicitly (never
// silently) and the thread-transport suites keep the sanitizer
// coverage. Debug/Release/ASan CI jobs run them in full.
#include <gtest/gtest.h>

#include <csignal>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/run.hpp"
#include "matrix/kernel_dispatch.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#endif

// fork(2) from a multithreaded parent is unsupported by TSan (the child
// inherits a broken runtime); gate explicitly instead of hiding the
// tests from the build.
#if defined(HMXP_TSAN)
#define HMXP_SKIP_UNDER_TSAN()                                       \
  GTEST_SKIP() << "process transport forks worker processes, which " \
                  "ThreadSanitizer does not support"
#else
#define HMXP_SKIP_UNDER_TSAN() \
  do {                         \
  } while (false)
#endif

namespace hmxp::runtime {
namespace {

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- frame serialization ----------------------------------------------------

sim::ChunkPlan sample_plan() {
  sim::ChunkPlan plan;
  plan.rect = {1, 3, 2, 6};
  plan.steps.push_back({12, 8, 0, 1});
  plan.steps.push_back({12, 8, 1, 2});
  plan.steps.push_back({6, 8, 2, 3});
  plan.prefetch_depth = 0;
  plan.peak_override = 17;
  return plan;
}

TEST(Serde, ChunkFrameRoundTrips) {
  ChunkMessage message;
  message.plan = sample_plan();
  message.element_rows = 2;
  message.element_cols = 3;
  message.c = {1.5, -2.25, 3.0, 0.0, 1e-300, 6.5};

  serde::ByteBuffer wire;
  serde::encode_chunk(message, wire);
  ASSERT_GT(wire.size(), serde::kLengthBytes);
  const std::uint64_t length = serde::decode_length(wire.data());
  ASSERT_EQ(wire.size(), serde::kLengthBytes + length);

  BufferPool pool;
  const ChunkMessage decoded = serde::decode_chunk(
      wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
      pool);
  EXPECT_EQ(decoded.plan.rect, message.plan.rect);
  EXPECT_EQ(decoded.plan.steps, message.plan.steps);
  EXPECT_EQ(decoded.plan.prefetch_depth, message.plan.prefetch_depth);
  EXPECT_EQ(decoded.plan.peak_override, message.plan.peak_override);
  EXPECT_EQ(decoded.element_rows, message.element_rows);
  EXPECT_EQ(decoded.element_cols, message.element_cols);
  EXPECT_EQ(decoded.c, message.c);
}

TEST(Serde, OperandAndResultFramesRoundTrip) {
  BufferPool pool;
  {
    OperandMessage message;
    message.step = 4;
    message.k_elem_begin = 32;
    message.k_elems = 2;
    message.a = {1.0, 2.0, 3.0, 4.0};
    message.b = {5.0, 6.0};
    serde::ByteBuffer wire;
    serde::encode_operand(message, wire);
    const std::uint64_t length = serde::decode_length(wire.data());
    const OperandMessage decoded = serde::decode_operand(
        wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
        pool);
    EXPECT_EQ(decoded.step, message.step);
    EXPECT_EQ(decoded.k_elem_begin, message.k_elem_begin);
    EXPECT_EQ(decoded.k_elems, message.k_elems);
    EXPECT_EQ(decoded.a, message.a);
    EXPECT_EQ(decoded.b, message.b);
  }
  {
    ResultMessage message;
    message.plan = sample_plan();
    message.element_rows = 1;
    message.element_cols = 2;
    message.c = {9.0, -8.0};
    message.updates_performed = 3;
    message.step_seconds = {0.25, 0.125, 0.5};
    serde::ByteBuffer wire;
    serde::encode_result(message, wire);
    const std::uint64_t length = serde::decode_length(wire.data());
    const ResultMessage decoded = serde::decode_result(
        wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
        pool);
    EXPECT_EQ(decoded.plan.steps, message.plan.steps);
    EXPECT_EQ(decoded.c, message.c);
    EXPECT_EQ(decoded.updates_performed, message.updates_performed);
    EXPECT_EQ(decoded.step_seconds, message.step_seconds);
  }
}

TEST(Serde, TruncatedFrameThrowsInsteadOfMisreading) {
  ChunkMessage message;
  message.plan = sample_plan();
  message.element_rows = 1;
  message.element_cols = 2;
  message.c = {1.0, 2.0};
  serde::ByteBuffer wire;
  serde::encode_chunk(message, wire);
  BufferPool pool;
  const std::uint64_t length = serde::decode_length(wire.data());
  EXPECT_THROW(serde::decode_chunk(wire.data() + serde::kLengthBytes,
                                   static_cast<std::size_t>(length) - 3, pool),
               std::runtime_error);
}

// ---- cross-transport parity -------------------------------------------------

/// Heterogeneous instance for the replay half of the parity suite:
/// pairwise distinct link speeds, compute rates and memories, so the
/// replayed schedules exercise unequal carve widths and prefetch
/// depths on both transports.
platform::Platform hetero_platform() {
  std::vector<platform::WorkerSpec> specs = {
      {0.010, 0.001, 30, "alpha"},
      {0.013, 0.002, 60, "beta"},
      {0.017, 0.0015, 140, "gamma"},
  };
  return platform::Platform("parity", specs);
}

struct TransportRun {
  ExecutorReport report;
  std::vector<sim::Decision> decisions;
  matrix::Matrix c;
};

TransportRun run_transport(sim::Scheduler& scheduler,
                           TransportKind transport,
                           const platform::Platform& plat,
                           const matrix::Partition& part) {
  const auto a = random_matrix(part.n_a(), part.n_ab(), 11);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 12);
  TransportRun run{.report = {}, .decisions = {},
                   .c = random_matrix(part.n_a(), part.n_b(), 13)};
  ExecutorOptions options;
  options.transport = transport;
  run.report = execute_online(scheduler, plat, part, a, b, run.c, options,
                              &run.decisions);
  return run;
}

TransportRun run_live(const std::string& algorithm, TransportKind transport,
                      const platform::Platform& plat,
                      const matrix::Partition& part) {
  auto scheduler = sched::Registry::instance().make(algorithm, plat, part);
  return run_transport(*scheduler, transport, plat, part);
}

TEST(ProcessBackend, EveryRegisteredSchedulerLiveParityWithThreadTransport) {
  HMXP_SKIP_UNDER_TSAN();
  // Live scheduling reacts to ACTUAL completion timing, which no two
  // runs share exactly (that is the point of the online backend), so
  // the cross-transport guarantee for live runs is the order-invariant
  // one, on a homogeneous platform where every carve has the same
  // width: same decision count, full coverage on both, and -- because
  // every layout groups the same k sets -- bit-for-bit the same C
  // whatever the interleaving. The replay test below pins exact
  // decision sequences.
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    const TransportRun threaded =
        run_live(algorithm, TransportKind::kThread, plat, part);
    const TransportRun forked =
        run_live(algorithm, TransportKind::kProcess, plat, part);

    // Both transports complete every registered scheduler with a
    // verified product.
    EXPECT_TRUE(threaded.report.verified);
    EXPECT_TRUE(forked.report.verified);
    EXPECT_EQ(threaded.report.transport, "thread");
    EXPECT_EQ(forked.report.transport, "process");

    // SP-* decision streams react to measured wall drift: a scheduling
    // hiccup can legitimately trip the speculation gate on one
    // transport and not the other, adding duplicate/cancel decisions
    // and wasted twin updates. Their guarantee is the bit-for-bit C
    // below; the counts are only pinned for drift-blind schedulers.
    if (algorithm.rfind("SP-", 0) != 0) {
      EXPECT_EQ(forked.decisions.size(), threaded.decisions.size());
      EXPECT_EQ(forked.report.updates_performed,
                threaded.report.updates_performed);
      EXPECT_EQ(forked.report.chunks_processed,
                threaded.report.chunks_processed);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(forked.c, threaded.c), 0.0);
  }
}

TEST(ProcessBackend, EveryRegisteredSchedulerReplaysIdenticallyOnBothTransports) {
  HMXP_SKIP_UNDER_TSAN();
  // The deterministic half: simulate each scheduler, then execute its
  // recorded schedule on both transports. Decision sequences must match
  // the simulation exactly on either transport, the model projection
  // must agree to the bit, and the two transports must produce
  // bit-for-bit the same C -- the statement that moving the data plane
  // out of the address space changed NOTHING about execution.
  const platform::Platform plat = hetero_platform();
  const matrix::Partition part(52, 70, 100, 8);

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    auto probe = sched::Registry::instance().make(algorithm, plat, part);
    std::vector<sim::Decision> simulated;
    const sim::RunResult sim_result =
        sim::simulate(*probe, plat, part, false, &simulated);

    TransportRun runs[2];
    const TransportKind kinds[2] = {TransportKind::kThread,
                                    TransportKind::kProcess};
    for (int which = 0; which < 2; ++which) {
      sim::ReplayScheduler replay(algorithm, simulated);
      runs[which] = run_transport(replay, kinds[which], plat, part);
      const TransportRun& run = runs[which];
      EXPECT_TRUE(run.report.verified);
      ASSERT_EQ(run.decisions.size(), simulated.size());
      for (std::size_t i = 0; i < simulated.size(); ++i) {
        EXPECT_EQ(run.decisions[i].comm, simulated[i].comm)
            << transport_kind_name(kinds[which]) << " decision " << i;
        EXPECT_EQ(run.decisions[i].worker, simulated[i].worker)
            << transport_kind_name(kinds[which]) << " decision " << i;
      }
      EXPECT_DOUBLE_EQ(run.report.result.makespan, sim_result.makespan);
      EXPECT_EQ(run.report.result.comm_blocks, sim_result.comm_blocks);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(runs[1].c, runs[0].c), 0.0);
  }
}

TEST(ProcessBackend, SerializationCountersReportTheDataPlaneCost) {
  HMXP_SKIP_UNDER_TSAN();
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(40, 40, 56, 8);

  const TransportRun threaded =
      run_live("ODDOML", TransportKind::kThread, plat, part);
  const TransportRun forked =
      run_live("ODDOML", TransportKind::kProcess, plat, part);

  // The thread transport moves messages zero-copy: counted, not encoded.
  EXPECT_GT(threaded.report.transport_stats.messages_sent, 0u);
  EXPECT_EQ(threaded.report.transport_stats.bytes_sent, 0u);
  EXPECT_DOUBLE_EQ(threaded.report.transport_stats.serde_seconds, 0.0);
  // The process transport serializes every frame and says what it paid.
  EXPECT_EQ(forked.report.transport_stats.messages_sent,
            threaded.report.transport_stats.messages_sent);
  EXPECT_EQ(forked.report.transport_stats.messages_received,
            threaded.report.transport_stats.messages_received);
  EXPECT_GT(forked.report.transport_stats.bytes_sent, 0u);
  EXPECT_GT(forked.report.transport_stats.bytes_received, 0u);
  EXPECT_GT(forked.report.transport_stats.serde_seconds, 0.0);
}

// ---- worker-process death ---------------------------------------------------

TEST(ProcessBackend, SigkilledWorkerProcessRecoversBitForBit) {
  HMXP_SKIP_UNDER_TSAN();
  // A SIGKILL'd child gets no chance to unwind, flush, or say goodbye:
  // the master sees a raw socket EOF mid-run. Under tolerate_faults the
  // FT policy must absorb it -- endpoint drained, mirror rolled back,
  // lost chunk re-assigned -- and the recovered C must equal the
  // fault-free product bit for bit (one-k-per-step layout: the same
  // per-element accumulation order, whoever adopts the blocks).
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 21);
  const auto b = random_matrix(40, 40, 22);
  const matrix::Matrix c_initial = random_matrix(40, 40, 23);

  matrix::Matrix c_clean = c_initial;
  {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kProcess;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_clean, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 0);
  }

  matrix::Matrix c_faulty = c_initial;
  {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kProcess;
    options.tolerate_faults = true;
    // Runs inside the forked child: a REAL SIGKILL, not an exception.
    options.fault_hook = [](int worker, std::size_t step) {
      if (worker == 1 && step == 1) std::raise(SIGKILL);
    };
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_faulty, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 1);
  }

  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_faulty, c_clean), 0.0);
}

TEST(ProcessBackend, StrictModeSurfacesTheChildsRootCause) {
  HMXP_SKIP_UNDER_TSAN();
  // A child that dies by EXCEPTION ships its what() as a kError frame
  // before exiting, so strict mode rethrows the same root cause the
  // thread transport would.
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 31);
  const auto b = random_matrix(40, 40, 32);
  matrix::Matrix c(40, 40, 0.0);

  auto scheduler = sched::Registry::instance().make("ODDOML", plat, part);
  ExecutorOptions options;
  options.transport = TransportKind::kProcess;
  options.faults.add(/*worker=*/1, /*at=*/0.0);
  try {
    execute_online(*scheduler, plat, part, a, b, c, options);
    FAIL() << "expected the scheduled fault to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("scheduled fault"),
              std::string::npos)
        << error.what();
  }
  // The run failed cleanly (children reaped): a retry works.
  auto retry = sched::Registry::instance().make("ODDOML", plat, part);
  const ExecutorReport report =
      execute_online(*retry, plat, part, a, b, c, options = {});
  EXPECT_TRUE(report.verified);
}

// ---- kernel-tier propagation ------------------------------------------------

TEST(ProcessBackend, ForcedKernelTierGovernsForkedWorkers) {
  HMXP_SKIP_UNDER_TSAN();
  // Pin an off-default tier in the master: every forked worker must
  // boot with the same pin (each child re-asserts it and reports its
  // active tier in the bootstrap handshake; a mismatch aborts the run).
  matrix::force_kernel_tier(matrix::KernelTier::kTiled);
  const struct Unpin {
    ~Unpin() { matrix::force_kernel_tier(std::nullopt); }
  } unpin;
  ASSERT_EQ(matrix::active_kernel_tier(), matrix::KernelTier::kTiled);

  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 41);
  const auto b = random_matrix(40, 56, 42);
  matrix::Matrix c(40, 56, 0.25);

  auto scheduler = sched::Registry::instance().make("ODDOML", plat, part);
  ExecutorOptions options;
  options.transport = TransportKind::kProcess;
  const ExecutorReport report =
      execute_online(*scheduler, plat, part, a, b, c, options);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(matrix::active_kernel_tier(), matrix::KernelTier::kTiled);
}

}  // namespace
}  // namespace hmxp::runtime

// ---- the core facade on Backend::kProcess -----------------------------------

namespace hmxp::core {
namespace {

TEST(ProcessBackend, CoreRunsCellsOnTheProcessBackend) {
  HMXP_SKIP_UNDER_TSAN();
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  const RunReport simulated = run_algorithm("ORROML", plat, part);
  OnlineOptions online;
  online.backend = Backend::kProcess;
  online.data_seed = 7;
  const RunReport executed =
      run_algorithm_online("ORROML", plat, part, online);

  EXPECT_EQ(executed.backend, Backend::kProcess);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_GT(executed.online_wall_seconds, 0.0);
  // Deterministic policy: identical decisions, identical projection.
  EXPECT_DOUBLE_EQ(executed.result.makespan, simulated.result.makespan);
  EXPECT_EQ(executed.result.decisions, simulated.result.decisions);

  // The experiment grid switches the whole run with one knob.
  ExperimentOptions grid;
  grid.threads = 1;
  grid.backend = Backend::kProcess;
  grid.online.data_seed = 7;
  const auto results = run_experiment({Instance{"cell", plat, part}},
                                      {"ORROML", "ODDOML"}, grid);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].cell_ok(0)) << results[0].errors[0];
  EXPECT_TRUE(results[0].cell_ok(1)) << results[0].errors[1];
  EXPECT_EQ(results[0].reports[0].backend, Backend::kProcess);
  EXPECT_DOUBLE_EQ(results[0].reports[0].result.makespan,
                   simulated.result.makespan);
}

TEST(ProcessBackend, BackendNamesParseBothWays) {
  EXPECT_STREQ(backend_name(Backend::kProcess), "process");
  EXPECT_EQ(parse_backend("process"), Backend::kProcess);
  EXPECT_EQ(parse_backend("THREAD"), Backend::kOnline);
  EXPECT_EQ(parse_backend("sim"), Backend::kSim);
  EXPECT_EQ(parse_backend("bogus"), std::nullopt);
  EXPECT_THROW(
      {
        OnlineOptions invalid;
        invalid.backend = Backend::kSim;
        run_algorithm_online("ODDOML",
                             platform::Platform::homogeneous(2, 0.01, 0.002,
                                                             40),
                             matrix::Partition(24, 24, 24, 8), invalid);
      },
      std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::core
