// Tests for the threaded master-worker runtime: numerical correctness of
// every algorithm's schedule on real data, channel semantics, slowdown
// emulation, and input validation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/algorithms.hpp"
#include "platform/generator.hpp"
#include "runtime/channel.hpp"
#include "runtime/executor.hpp"
#include "testing_support.hpp"
#include "util/rng.hpp"

namespace hmxp::runtime {
namespace {

TEST(Channel, FifoAndCapacityBlocking) {
  Channel<int> channel(2);
  channel.push(1);
  channel.push(2);

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    channel.push(3);  // blocks until a pop frees a slot
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(channel.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(channel.pop().value(), 2);
  EXPECT_EQ(channel.pop().value(), 3);
}

TEST(Channel, CloseDrainsThenSignals) {
  Channel<int> channel(4);
  channel.push(7);
  channel.close();
  EXPECT_EQ(channel.pop().value(), 7);   // drain first
  EXPECT_FALSE(channel.pop().has_value());  // then closed
  EXPECT_THROW(channel.push(8), std::logic_error);
}

TEST(Channel, RejectsZeroCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

// ---- end-to-end numerical correctness --------------------------------------

class RuntimeAllAlgorithms
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(RuntimeAllAlgorithms, ComputesExactProduct) {
  // Odd sizes to exercise edge blocks everywhere.
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13
  const auto plat = platform::Platform::homogeneous(4, 0.01, 0.002, 40);
  util::Rng rng(1234);
  const auto a = matrix::Matrix::random(52, 70, rng);
  const auto b = matrix::Matrix::random(70, 100, rng);
  const auto c0 = matrix::Matrix::random(52, 100, rng);

  matrix::Matrix c = c0;
  auto scheduler = core::make_scheduler(GetParam(), plat, part);
  std::vector<sim::Decision> decisions;
  sim::simulate(*scheduler, plat, part, false, &decisions);

  const ExecutorReport report = execute(plat, part, decisions, a, b, c);
  EXPECT_TRUE(report.verified);
  EXPECT_LT(report.max_abs_error, 1e-10);
  EXPECT_EQ(report.updates_performed, 7u * 13u * 9u);
  EXPECT_GT(report.chunks_processed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Everything, RuntimeAllAlgorithms,
                         ::testing::ValuesIn(core::all_algorithms()),
                         [](const auto& info) {
                           return testing::param_safe(
                               core::algorithm_name(info.param));
                         });

TEST(Runtime, HeterogeneousPlatformSchedule) {
  // Schedules from a heterogeneous platform (different chunk sizes per
  // worker) must still produce the exact product.
  const matrix::Partition part = matrix::Partition(96, 64, 160, 8);
  std::vector<platform::WorkerSpec> specs = {
      {0.01, 0.001, 21, "tiny"},    // mu = 3
      {0.01, 0.001, 60, "small"},   // mu = 5
      {0.005, 0.002, 140, "big"},   // mu = 9
  };
  const platform::Platform plat("hetero", specs);
  util::Rng rng(99);
  const auto a = matrix::Matrix::random(96, 64, rng);
  const auto b = matrix::Matrix::random(64, 160, rng);
  matrix::Matrix c(96, 160, 0.5);
  const ExecutorReport report = run_on_data("Het", plat, part, a, b, c);
  EXPECT_TRUE(report.verified);
  // Work spread across at least two workers.
  int active = 0;
  for (const std::size_t updates : report.updates_per_worker)
    active += (updates > 0);
  EXPECT_GE(active, 2);
}

TEST(Runtime, SlowdownEmulationPreservesResult) {
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  util::Rng rng(7);
  const auto a = matrix::Matrix::random(40, 40, rng);
  const auto b = matrix::Matrix::random(40, 40, rng);
  matrix::Matrix c(40, 40, 1.0);
  ExecutorOptions options;
  options.compute_slowdown = {1, 3, 5};  // paper's deceleration trick
  const ExecutorReport report =
      run_on_data("ORROML", plat, part, a, b, c, options);
  EXPECT_TRUE(report.verified);
}

TEST(Runtime, ValidatesShapesAndOptions) {
  const matrix::Partition part(16, 16, 16, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.002, 40);
  const matrix::Matrix good(16, 16);
  const matrix::Matrix bad(15, 16);
  matrix::Matrix c(16, 16);
  std::vector<sim::Decision> empty;
  EXPECT_THROW(execute(plat, part, empty, bad, good, c),
               std::invalid_argument);
  ExecutorOptions options;
  options.compute_slowdown = {1};  // wrong length (2 workers)
  EXPECT_THROW(execute(plat, part, empty, good, good, c, options),
               std::invalid_argument);
  options.compute_slowdown = {0, 1};  // zero factor
  EXPECT_THROW(execute(plat, part, empty, good, good, c, options),
               std::invalid_argument);
}

TEST(Runtime, RejectsCorruptDecisionLog) {
  const matrix::Partition part(16, 16, 16, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.002, 40);
  const matrix::Matrix a(16, 16, 1.0);
  const matrix::Matrix b(16, 16, 1.0);
  matrix::Matrix c(16, 16, 0.0);
  // Operand decision with no preceding chunk.
  std::vector<sim::Decision> bad{sim::Decision::send_operands(0)};
  ExecutorOptions options;
  options.verify = false;
  EXPECT_THROW(execute(plat, part, bad, a, b, c, options), std::logic_error);
}

TEST(Runtime, IdentityProductSanity) {
  // C = I * B exactly reproduces B (plus initial C of zero).
  const matrix::Partition part(24, 24, 24, 8);
  const auto plat = platform::Platform::homogeneous(2, 0.01, 0.002, 60);
  const auto eye = matrix::Matrix::identity(24);
  util::Rng rng(5);
  const auto b = matrix::Matrix::random(24, 24, rng);
  matrix::Matrix c(24, 24, 0.0);
  run_on_data("ODDOML", plat, part, eye, b, c);
  EXPECT_LT(matrix::Matrix::max_abs_diff(c, b), 1e-12);
}

}  // namespace
}  // namespace hmxp::runtime
