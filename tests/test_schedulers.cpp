// Scheduler behaviour tests: every algorithm completes correct schedules
// whose traces satisfy the platform invariants, and algorithm-specific
// properties (enrollment formulas, CCR, determinism) hold.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "model/costs.hpp"
#include "platform/generator.hpp"
#include "sched/demand_driven.hpp"
#include "sched/homogeneous.hpp"
#include "sched/maxreuse.hpp"
#include "sched/min_min.hpp"
#include "sched/round_robin.hpp"
#include "sim/scheduler.hpp"
#include "testing_support.hpp"

namespace hmxp {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

// ---- cross-algorithm invariants -----------------------------------------

struct AlgorithmCase {
  core::Algorithm algorithm;
  const char* platform;  // "mem", "links", "comp", "homog"
};

platform::Platform named_platform(const std::string& name) {
  if (name == "mem") return platform::hetero_memory();
  if (name == "links") return platform::hetero_links();
  if (name == "comp") return platform::hetero_compute();
  return platform::Platform::homogeneous(6, 0.004, 0.0007, 800);
}

class AllAlgorithms
    : public ::testing::TestWithParam<std::tuple<core::Algorithm, const char*>> {
};

TEST_P(AllAlgorithms, CompletesWithValidTrace) {
  const auto [algorithm, platform_name] = GetParam();
  const platform::Platform plat = named_platform(platform_name);
  const auto part = blocks(20, 10, 50);

  auto scheduler = core::make_scheduler(algorithm, plat, part);
  const sim::RunResult result =
      sim::simulate(*scheduler, plat, part, /*record_trace=*/true);

  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GE(result.workers_enrolled, 1);
  EXPECT_LE(result.workers_enrolled, plat.size());
  // Every block updated t times: updates = r * s * t.
  EXPECT_EQ(result.updates, 20 * 50 * 10);
  // Platform model invariants on the full event trace.
  EXPECT_TRUE(result.trace.one_port_respected());
  EXPECT_TRUE(result.trace.compute_serialized());
  // Port is busy at most the makespan.
  EXPECT_LE(result.port_busy, result.makespan + 1e-9);
}

TEST_P(AllAlgorithms, DeterministicAcrossRuns) {
  const auto [algorithm, platform_name] = GetParam();
  const platform::Platform plat = named_platform(platform_name);
  const auto part = blocks(10, 5, 25);
  auto first = core::make_scheduler(algorithm, plat, part);
  auto second = core::make_scheduler(algorithm, plat, part);
  const double makespan1 = sim::simulate(*first, plat, part).makespan;
  const double makespan2 = sim::simulate(*second, plat, part).makespan;
  EXPECT_DOUBLE_EQ(makespan1, makespan2);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAlgorithms,
    ::testing::Combine(::testing::ValuesIn(core::all_algorithms()),
                       ::testing::Values("mem", "links", "comp", "homog")),
    [](const auto& info) {
      return testing::param_safe(
                 core::algorithm_name(std::get<0>(info.param))) +
             "_" + std::get<1>(info.param);
    });

// ---- maximum re-use (section 3) ------------------------------------------

TEST(MaxReuse, AchievesPaperCCROnDivisibleInstance) {
  // m = 21 -> mu = 4; r = s = 8, t = 6 all divisible by mu where needed.
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 21);
  const auto part = blocks(8, 6, 8);
  sched::MaxReuseScheduler scheduler(plat, part);
  EXPECT_EQ(scheduler.mu(), 4);
  const sim::RunResult result = sim::simulate(scheduler, plat, part);
  // CCR = 2/t + 2/mu exactly on divisible instances.
  EXPECT_NEAR(result.ccr(), 2.0 / 6 + 2.0 / 4, 1e-12);
  EXPECT_EQ(result.workers_enrolled, 1);
}

TEST(MaxReuse, CCRApproachesAsymptoteWithLargeT) {
  const auto plat = platform::Platform::homogeneous(1, 1.0, 1.0, 21);
  const auto part = blocks(4, 200, 4);
  sched::MaxReuseScheduler scheduler(plat, part);
  const sim::RunResult result = sim::simulate(scheduler, plat, part);
  EXPECT_NEAR(result.ccr(), 2.0 / 4, 0.02);
}

TEST(MaxReuse, TargetsChosenWorkerOnly) {
  const auto plat = platform::Platform::homogeneous(3, 1.0, 1.0, 21);
  const auto part = blocks(4, 3, 4);
  sched::MaxReuseScheduler scheduler(plat, part, 2);
  sim::Engine engine(plat, part);
  sim::run(scheduler, engine);
  EXPECT_EQ(engine.progress(2).chunks_assigned, 1);
  EXPECT_EQ(engine.progress(0).chunks_assigned, 0);
  EXPECT_EQ(engine.progress(1).chunks_assigned, 0);
}

// ---- homogeneous algorithm (section 4) ------------------------------------

TEST(Homogeneous, EnrollmentFormula) {
  EXPECT_EQ(model::homogeneous_enrollment(10, 4, 2.0, 4.5), 5);  // paper's ex.
  EXPECT_EQ(model::homogeneous_enrollment(3, 4, 2.0, 4.5), 3);   // clamped
  EXPECT_EQ(model::homogeneous_enrollment(10, 10, 100.0, 0.001), 1);
}

TEST(Homogeneous, EnrollsPWorkersExactly) {
  // mu(800) = 26; P = ceil(26 * 0.0007 / 0.008) = ceil(2.275) = 3.
  const auto plat = platform::Platform::homogeneous(6, 0.004, 0.0007, 800);
  const auto part = blocks(26, 5, 78);
  auto scheduler = sched::make_homogeneous(plat, part);
  sim::Engine engine(plat, part);
  const sim::RunResult result = sim::run(scheduler, engine);
  EXPECT_EQ(result.workers_enrolled, 3);
  // Enrolled workers are the first three.
  EXPECT_GT(engine.progress(0).chunks_assigned, 0);
  EXPECT_GT(engine.progress(2).chunks_assigned, 0);
  EXPECT_EQ(engine.progress(3).chunks_assigned, 0);
}

TEST(Homogeneous, RequiresHomogeneousPlatform) {
  const auto part = blocks(8, 4, 8);
  EXPECT_THROW(sched::make_homogeneous(platform::hetero_memory(), part),
               std::invalid_argument);
}

TEST(Homogeneous, VirtualParamsRejectUndersizedCandidates) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(8, 4, 8);
  sched::HomogeneousParams params{plat.worker(7).c, plat.worker(7).w,
                                  plat.worker(7).m};  // 1 GiB virtual
  // Worker 0 only has 256 MiB: cannot host 1 GiB chunks.
  EXPECT_THROW(
      sched::make_homogeneous_on("X", plat, part, params, {0, 7}),
      std::invalid_argument);
}

// ---- round-robin / ORROML --------------------------------------------------

TEST(RoundRobin, ServesWorkersInCyclicOrder) {
  const auto plat = platform::Platform::homogeneous(3, 1.0, 1.0, 60);
  const auto part = blocks(5, 3, 15);
  auto scheduler = sched::make_orroml(plat, part);
  sim::Engine engine(plat, part);
  std::vector<sim::Decision> log;
  sim::run(scheduler, engine, &log);
  // First three decisions are the three initial chunk sends, in order.
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log[0].comm, sim::CommKind::kSendC);
  EXPECT_EQ(log[0].worker, 0);
  EXPECT_EQ(log[1].worker, 1);
  EXPECT_EQ(log[2].worker, 2);
  // All three enrolled (no resource selection).
  EXPECT_GT(engine.progress(2).chunks_assigned, 0);
}

// ---- min-min / OMMOML -------------------------------------------------------

TEST(MinMin, EnrollsNoMoreThanDemandDriven) {
  for (const char* name : {"mem", "links", "comp"}) {
    const platform::Platform plat = named_platform(name);
    const auto part = blocks(20, 10, 50);
    auto minmin = sched::make_ommoml(plat, part);
    auto oddoml = sched::make_oddoml(plat, part);
    const int minmin_enrolled =
        sim::simulate(minmin, plat, part).workers_enrolled;
    const int oddoml_enrolled =
        sim::simulate(oddoml, plat, part).workers_enrolled;
    EXPECT_LE(minmin_enrolled, oddoml_enrolled) << name;
  }
}

// ---- demand-driven / ODDOML and BMM ----------------------------------------

TEST(DemandDriven, EnrollsEveryWorkerWhenWorkAbounds) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(100, 10, 800);  // plenty of column groups
  auto scheduler = sched::make_oddoml(plat, part);
  const sim::RunResult result = sim::simulate(scheduler, plat, part);
  EXPECT_EQ(result.workers_enrolled, plat.size());
}

TEST(Bmm, UsesThirdsLayoutChunks) {
  const auto plat = platform::Platform::homogeneous(2, 1.0, 1.0, 75);
  const auto part = blocks(10, 7, 10);
  auto scheduler = sched::make_bmm(plat, part);
  sim::Engine engine(plat, part);
  std::vector<sim::Decision> log;
  sim::run(scheduler, engine, &log);
  for (const sim::Decision& decision : log) {
    if (decision.comm == sim::CommKind::kSendC) {
      EXPECT_LE(decision.chunk.rect.cols(), 5u);  // beta = 5
      EXPECT_EQ(decision.chunk.prefetch_depth, 0);
    }
  }
}

TEST(Bmm, MovesMoreDataThanOurLayout) {
  // The sqrt(3) layout advantage: on the same platform and matrix, BMM's
  // total communication volume strictly exceeds ODDOML's.
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(20, 20, 60);
  auto bmm = sched::make_bmm(plat, part);
  auto oddoml = sched::make_oddoml(plat, part);
  const auto bmm_result = sim::simulate(bmm, plat, part);
  const auto oddoml_result = sim::simulate(oddoml, plat, part);
  EXPECT_GT(bmm_result.comm_blocks, oddoml_result.comm_blocks);
  EXPECT_GT(bmm_result.ccr(), oddoml_result.ccr());
}

// ---- replay ----------------------------------------------------------------

TEST(Replay, ReproducesOriginalMakespan) {
  const platform::Platform plat = platform::hetero_compute();
  const auto part = blocks(15, 8, 40);
  auto scheduler = sched::make_oddoml(plat, part);
  std::vector<sim::Decision> log;
  const double original =
      sim::simulate(scheduler, plat, part, false, &log).makespan;
  sim::ReplayScheduler replay("replay", std::move(log));
  const double replayed = sim::simulate(replay, plat, part).makespan;
  EXPECT_DOUBLE_EQ(original, replayed);
}

}  // namespace
}  // namespace hmxp
