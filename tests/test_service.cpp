// The persistent multi-job service (service/daemon.hpp): admission,
// fair sharing, warm pools, lease-based concurrency, calibration
// persistence and the loopback-TCP front-end.
//
// The load-bearing property throughout: a service job and a standalone
// execute_online of the same (partition, seed) pair produce a
// BIT-FOR-BIT identical C. Operands come from core::generate_operands
// either way, chunk shapes are a pure function of (partition, mu) on a
// homogeneous fleet, and every chunk accumulates its k-steps in plan
// order from the master's pristine C window -- so neither lease churn
// nor mid-chunk worker death can change a single bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/algorithms.hpp"
#include "core/run.hpp"
#include "matrix/partition.hpp"
#include "platform/calibration.hpp"
#include "platform/platform.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/socket_util.hpp"
#include "service/admission.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/wire.hpp"

namespace hmxp::service {
namespace {

constexpr std::size_t kPayloadCeiling = 32 * 1024;

platform::Platform test_platform(int p = 4) {
  return platform::Platform::homogeneous(p, /*c=*/0.005, /*w=*/0.001,
                                         /*m=*/40);
}

DaemonConfig base_config(int p = 4) {
  DaemonConfig config;
  config.platform = test_platform(p);
  config.executor.verify = false;
  config.max_payload_doubles = kPayloadCeiling;
  config.calibration_cache = "off";  // tests never touch the user cache
  return config;
}

JobSpec small_spec(std::uint64_t seed = 7) {
  JobSpec spec;
  spec.n_a = 52;
  spec.n_ab = 40;
  spec.n_b = 60;
  spec.q = 8;
  spec.data_seed = seed;
  return spec;
}

/// More chunks than workers, so every leased worker computes.
JobSpec wide_spec(std::uint64_t seed = 11) {
  JobSpec spec;
  spec.n_a = 104;
  spec.n_ab = 40;
  spec.n_b = 120;
  spec.q = 8;
  spec.data_seed = seed;
  return spec;
}

/// The same job computed standalone: generate_operands + execute_online
/// over an owned transport. The ground truth service results must equal
/// bit for bit.
matrix::Matrix standalone_product(const JobSpec& spec,
                                  const platform::Platform& platform) {
  const matrix::Partition partition(spec.n_a, spec.n_ab, spec.n_b, spec.q);
  core::OperandSet operands =
      core::generate_operands(partition, spec.data_seed);
  const auto scheduler = core::make_scheduler(
      core::algorithm_from_name(spec.algorithm), platform, partition);
  runtime::ExecutorOptions options;
  options.verify = false;
  options.tolerate_faults = true;
  runtime::execute_online(*scheduler, platform, partition, operands.a,
                          operands.b, operands.c, options);
  return std::move(operands.c);
}

void expect_bitwise_equal(const matrix::Matrix& got,
                          const matrix::Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(double)),
            0)
      << "service C diverged from the standalone product";
}

std::string temp_cache_path(const std::string& tag) {
  return testing::TempDir() + "hmxp_calib_" + tag + "_" +
         std::to_string(::getpid());
}

// ---- single job vs standalone ----------------------------------------------

TEST(Service, SingleJobMatchesStandaloneBitForBit) {
  Daemon daemon(base_config());
  const JobSpec spec = small_spec();
  const JobResult result = Client(daemon).run(spec);
  ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
  EXPECT_GT(result.workers_used, 0);
  EXPECT_EQ(result.workers_failed, 0);
  EXPECT_GT(result.priced_throughput, 0.0);
  EXPECT_GT(result.chunks_processed, 0u);
  expect_bitwise_equal(result.c, standalone_product(spec, test_platform()));
  daemon.shutdown();
  EXPECT_EQ(daemon.fleet().pool().stats().outstanding, 0u);
}

TEST(Service, VerifiedJobReportsVerification) {
  Daemon daemon(base_config());
  JobSpec spec = small_spec(3);
  spec.verify = true;
  const JobResult result = Client(daemon).run(spec);
  ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
  EXPECT_TRUE(result.verified);
  EXPECT_LE(result.max_abs_error, 1e-9);
}

TEST(Service, WaitConsumesTheResult) {
  Daemon daemon(base_config());
  const std::uint64_t id = daemon.submit(small_spec());
  const JobResult result = daemon.wait(id);
  ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
  EXPECT_THROW(daemon.wait(id), std::exception);      // consumed
  EXPECT_THROW(daemon.wait(9999999), std::exception); // unknown id
}

// ---- admission --------------------------------------------------------------

TEST(Service, AdmissionRejectsBadSpecs) {
  Daemon daemon(base_config());
  Client client(daemon);

  JobSpec non_ft = small_spec();
  non_ft.algorithm = "ODDOML";
  JobResult result = client.run(non_ft);
  EXPECT_EQ(result.state, JobState::kRejected);
  EXPECT_NE(result.error.find("fault-tolerant"), std::string::npos);

  JobSpec unknown = small_spec();
  unknown.algorithm = "NO-SUCH-POLICY";
  result = client.run(unknown);
  EXPECT_EQ(result.state, JobState::kRejected);
  EXPECT_FALSE(result.error.empty());

  JobSpec oversized = small_spec();
  oversized.n_a = oversized.n_b = 1000;  // 1e6 doubles > ceiling
  result = client.run(oversized);
  EXPECT_EQ(result.state, JobState::kRejected);
  EXPECT_NE(result.error.find("ceiling"), std::string::npos);

  JobSpec degenerate = small_spec();
  degenerate.n_ab = 0;
  result = client.run(degenerate);
  EXPECT_EQ(result.state, JobState::kRejected);

  JobSpec weightless = small_spec();
  weightless.weight = 0.0;
  result = client.run(weightless);
  EXPECT_EQ(result.state, JobState::kRejected);

  // Rejections never consume queue slots or workers.
  const JobResult good = client.run(small_spec());
  EXPECT_EQ(good.state, JobState::kCompleted) << good.error;
}

TEST(Service, PriceJobRejectsMemoryOvercommit) {
  // The paper's own Table 2 counterexample: both workers saturate the
  // port exactly, and the buffer count worker 0 needs to SUSTAIN that
  // schedule grows with x -- far beyond the 12 blocks its mu = 2 memory
  // actually holds at x = 100.
  const platform::Platform platform(
      "table2", {{1.0, 2.0, 12, "near"}, {100.0, 200.0, 12, "far"}});
  const std::vector<double> drift(2, 1.0);
  const std::vector<char> alive(2, 1);
  JobSpec spec = small_spec();
  const AdmissionVerdict verdict =
      price_job(spec, platform, drift, alive, kPayloadCeiling);
  EXPECT_FALSE(verdict.admitted);
  EXPECT_NE(verdict.reason.find("overcommits"), std::string::npos);
}

TEST(Service, PriceJobPricesDeadWorkersOut) {
  const platform::Platform platform = test_platform(2);
  JobSpec spec = small_spec();
  const std::vector<double> drift(2, 1.0);
  const AdmissionVerdict all_dead =
      price_job(spec, platform, drift, {0, 0}, kPayloadCeiling);
  EXPECT_FALSE(all_dead.admitted);
  const AdmissionVerdict one_alive =
      price_job(spec, platform, drift, {0, 1}, kPayloadCeiling);
  EXPECT_TRUE(one_alive.admitted) << one_alive.reason;
  EXPECT_GT(one_alive.throughput, 0.0);
}

TEST(Service, RejectsWhenQueueIsFull) {
  DaemonConfig config = base_config();
  config.max_concurrent_jobs = 1;
  config.queue_capacity = 1;
  Daemon daemon(config);
  std::vector<std::uint64_t> ids;
  ids.push_back(daemon.submit(wide_spec(1)));
  for (std::uint64_t seed = 2; seed <= 4; ++seed)
    ids.push_back(daemon.submit(small_spec(seed)));
  int completed = 0;
  int queue_full = 0;
  for (const std::uint64_t id : ids) {
    const JobResult result = daemon.wait(id);
    if (result.state == JobState::kCompleted) {
      ++completed;
    } else {
      ASSERT_EQ(result.state, JobState::kRejected) << result.error;
      EXPECT_NE(result.error.find("queue is full"), std::string::npos);
      ++queue_full;
    }
  }
  // The single runner can pop at most two jobs (one running, one
  // queued) before the rest of the burst arrives.
  EXPECT_GE(completed, 1);
  EXPECT_GE(queue_full, 2);
}

TEST(Service, SubmitAfterShutdownIsRejected) {
  Daemon daemon(base_config());
  EXPECT_EQ(Client(daemon).run(small_spec()).state, JobState::kCompleted);
  daemon.shutdown();
  const JobResult late = daemon.wait(daemon.submit(small_spec()));
  EXPECT_EQ(late.state, JobState::kRejected);
  EXPECT_NE(late.error.find("shutting down"), std::string::npos);
}

// ---- fair sharing -----------------------------------------------------------

TEST(Service, FairTargetsSplitByWeightWithFloor) {
  EXPECT_TRUE(fair_targets({}, 8).empty());
  EXPECT_EQ(fair_targets({1.0, 1.0}, 0), (std::vector<int>{0, 0}));
  EXPECT_EQ(fair_targets({2.0}, 5), (std::vector<int>{5}));
  EXPECT_EQ(fair_targets({1.0, 1.0}, 8), (std::vector<int>{4, 4}));
  // Floors come off the top, the surplus splits by weight: 1 each, then
  // 6 x {1/4, 3/4} = {1.5, 4.5}, remainders tie and index 0 wins.
  EXPECT_EQ(fair_targets({1.0, 3.0}, 8), (std::vector<int>{3, 5}));
  EXPECT_EQ(fair_targets({1.0, 3.0}, 9), (std::vector<int>{3, 6}));
  // Largest remainder, index tie-break.
  EXPECT_EQ(fair_targets({1.0, 1.0}, 5), (std::vector<int>{3, 2}));
  // Every job gets 1 while supply lasts, in registration order; jobs
  // beyond the supply wait at 0 and NO surplus is split.
  EXPECT_EQ(fair_targets({1.0, 1.0, 1.0}, 2), (std::vector<int>{1, 1, 0}));
  // Weight cannot starve a lighter job below its floor.
  EXPECT_EQ(fair_targets({100.0, 1.0}, 4), (std::vector<int>{3, 1}));
  int total = 0;
  for (const int t : fair_targets({0.7, 2.9, 1.4}, 11)) total += t;
  EXPECT_EQ(total, 11);
}

// ---- concurrency ------------------------------------------------------------

TEST(Service, EightConcurrentClientsAllBitForBit) {
  DaemonConfig config = base_config();
  config.max_concurrent_jobs = 8;
  config.queue_capacity = 64;
  Daemon daemon(config);
  const matrix::Matrix references[2] = {
      standalone_product(small_spec(100), test_platform()),
      standalone_product(small_spec(101), test_platform()),
  };
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&daemon, &references, &mismatches, &failures, t] {
      Client client(daemon);
      for (int j = 0; j < 2; ++j) {
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(j);
        const JobResult result = client.run(small_spec(seed));
        if (result.state != JobState::kCompleted) {
          ++failures;
          continue;
        }
        const matrix::Matrix& want = references[j];
        if (result.c.rows() != want.rows() ||
            result.c.cols() != want.cols() ||
            std::memcmp(result.c.data(), want.data(),
                        want.size() * sizeof(double)) != 0)
          ++mismatches;
      }
      (void)t;
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(daemon.jobs_completed(), 16u);
  daemon.shutdown();
  // Quiescent fleet: every payload buffer came home.
  EXPECT_EQ(daemon.fleet().pool().stats().outstanding, 0u);
  EXPECT_EQ(daemon.fleet().transport_stats().arena_leaked_slots, 0u);
}

// ---- warm pools across jobs -------------------------------------------------

TEST(Service, BufferPoolStaysWarmAcrossJobs) {
  // Six identical jobs on one fleet. The pool's heap growth is a
  // warm-up constant set by the worst-case in-flight buffer population
  // (workers x bounded-inbox messages x payloads per message) -- it
  // must NOT scale with the job count, while acquires do. Exact zeros
  // per warm job would overclaim: a warm job still allocates when
  // thread timing pushes the in-flight population past every earlier
  // peak, so the invariant is the bound, not the zero.
  Daemon daemon(base_config());
  Client client(daemon);
  runtime::BufferPool::Stats first_delta;
  std::size_t warm_allocations = 0;
  std::size_t warm_reuses = 0;
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const JobResult result = client.run(small_spec(seed));
    ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
    // Delta conservation: every checkout was an allocation or a reuse.
    EXPECT_EQ(result.pool_delta.allocations + result.pool_delta.reuses,
              result.pool_delta.acquires);
    if (seed == 21) {
      first_delta = result.pool_delta;
    } else {
      warm_allocations += result.pool_delta.allocations;
      warm_reuses += result.pool_delta.reuses;
    }
  }
  EXPECT_GT(first_delta.allocations, 0u);  // the cold pool warms up...
  EXPECT_GT(first_delta.reuses, 0u);
  // ...then recycling carries the service: five warm jobs reuse far
  // more than they grow.
  EXPECT_GT(warm_reuses, 8 * std::max<std::size_t>(warm_allocations, 1));
  const runtime::BufferPool::Stats total = daemon.fleet().pool().stats();
  EXPECT_LE(total.allocations, 64u);  // in-flight bound, not 6x a job
  EXPECT_GE(total.reuses + 64u, total.acquires);
  daemon.shutdown();
  EXPECT_EQ(daemon.fleet().pool().stats().outstanding, 0u);
}

// ---- worker death -----------------------------------------------------------

TEST(Service, WorkerDeathFailsNoJobAndShrinksFleet) {
  DaemonConfig config = base_config();
  // Kill worker 2 the first time it is about to compute a step; the
  // fleet-wide hook stays armed for the daemon's whole life, so the
  // one-shot latch matters.
  auto killed = std::make_shared<std::atomic<bool>>(false);
  config.executor.fault_hook = [killed](int worker, std::size_t) {
    if (worker == 2 && !killed->exchange(true))
      throw std::runtime_error("injected worker death");
  };
  Daemon daemon(config);
  Client client(daemon);

  const JobSpec spec = wide_spec(31);
  const JobResult hit = client.run(spec);
  ASSERT_EQ(hit.state, JobState::kCompleted) << hit.error;
  EXPECT_GE(hit.workers_failed, 1);
  EXPECT_EQ(daemon.alive_workers(), 3);
  // FT re-completed the lost chunks: the product is still exact.
  expect_bitwise_equal(hit.c, standalone_product(spec, test_platform()));

  // The dead worker is never leased again; later jobs are untouched.
  const JobResult after = client.run(spec);
  ASSERT_EQ(after.state, JobState::kCompleted) << after.error;
  EXPECT_EQ(after.workers_failed, 0);
  EXPECT_LE(after.workers_used, 3);
  expect_bitwise_equal(after.c, standalone_product(spec, test_platform()));
}

// ---- calibration persistence ------------------------------------------------

TEST(Service, CalibrationRoundTripsThroughTheCacheFile) {
  const std::string path = temp_cache_path("roundtrip");
  std::vector<platform::SpeedEstimate> speeds(3);
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    speeds[i].observe(0.5 + static_cast<double>(i), 0.25);
    speeds[i].observe(0.75 + static_cast<double>(i), 0.25);
    speeds[i].observe(0.8 + static_cast<double>(i), 0.25);
  }
  ASSERT_TRUE(platform::store_calibration(path, "fleet-a|3", speeds));
  const auto loaded = platform::load_calibration(path, "fleet-a|3", 3);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, speeds);

  // Wrong key, wrong count: a miss, never a crash.
  EXPECT_FALSE(platform::load_calibration(path, "fleet-b|3", 3).has_value());
  EXPECT_FALSE(platform::load_calibration(path, "fleet-a|3", 4).has_value());

  // A second fleet's entry coexists; the first survives the rewrite.
  std::vector<platform::SpeedEstimate> other(2);
  other[0].observe(1.5, 0.25);
  ASSERT_TRUE(platform::store_calibration(path, "fleet-b|2", other));
  EXPECT_TRUE(platform::load_calibration(path, "fleet-a|3", 3).has_value());
  EXPECT_EQ(*platform::load_calibration(path, "fleet-b|2", 2), other);

  // Corruption reads as a cold start.
  {
    std::FILE* file = std::fopen(path.c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fputs("hmxp-calibration-cache-v1\nfleet-a|3\tgarbage\n", file);
    std::fclose(file);
  }
  EXPECT_FALSE(platform::load_calibration(path, "fleet-a|3", 3).has_value());
  ::unlink(path.c_str());
}

TEST(Service, DaemonPersistsCalibrationAcrossRestarts) {
  const std::string path = temp_cache_path("daemon");
  DaemonConfig config = base_config();
  config.calibration_cache = path;
  config.fleet_label = "persist-test";
  {
    Daemon daemon(config);
    ASSERT_EQ(Client(daemon).run(wide_spec(41)).state, JobState::kCompleted);
    daemon.shutdown();  // persists at the quiescent point
  }
  // The restarted daemon reheats what the first one learned.
  Daemon revived(config);
  std::size_t observations = 0;
  for (const platform::SpeedEstimate& speed : revived.fleet().speeds())
    observations += speed.observations;
  EXPECT_GT(observations, 0u);
  // And still serves jobs correctly on the reheated estimates.
  const JobSpec spec = small_spec(42);
  const JobResult result = Client(revived).run(spec);
  ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
  expect_bitwise_equal(result.c, standalone_product(spec, test_platform()));
  ::unlink(path.c_str());
}

// ---- TCP front-end ----------------------------------------------------------

TEST(Service, TcpClientRoundTripsJobsAndErrors) {
  Daemon daemon(base_config());
  const std::uint16_t port = daemon.serve_tcp(0);
  ASSERT_GT(port, 0);
  TcpClient client(port, kPayloadCeiling);

  const JobSpec spec = small_spec(51);
  const JobResult result = client.run(spec);
  ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
  expect_bitwise_equal(result.c, standalone_product(spec, test_platform()));

  // The connection is reusable, and rejections travel with reasons.
  JobSpec bad = small_spec();
  bad.algorithm = "ODDOML";
  const JobResult rejected = client.run(bad);
  EXPECT_EQ(rejected.state, JobState::kRejected);
  EXPECT_NE(rejected.error.find("fault-tolerant"), std::string::npos);
  EXPECT_EQ(rejected.c.size(), 0u);
}

TEST(Service, TcpHandshakeRefusesWrongVersion) {
  Daemon daemon(base_config());
  const std::uint16_t port = daemon.serve_tcp(0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::uint8_t hello[8];
  std::memcpy(hello, &runtime::serde::kProtocolMagic, 4);
  const std::uint32_t wrong_version = wire::kServiceVersion + 1;
  std::memcpy(hello + 4, &wrong_version, 4);
  runtime::write_exact(fd, hello, sizeof(hello));
  std::uint8_t reply[9] = {};
  ASSERT_TRUE(runtime::read_exact(fd, reply, sizeof(reply), /*start=*/true));
  EXPECT_EQ(reply[8], 0);  // refused
  ::close(fd);
}

// ---- wire codec -------------------------------------------------------------

TEST(Service, WireCodecRoundTripsAndRejectsTruncation) {
  JobSpec spec;
  spec.algorithm = "FT-BMM";
  spec.n_a = 12;
  spec.n_ab = 34;
  spec.n_b = 56;
  spec.q = 7;
  spec.data_seed = 0xDEADBEEFu;
  spec.weight = 2.5;
  spec.verify = true;
  wire::ByteBuffer buffer;
  wire::encode_job_spec(spec, buffer);
  const auto decoded = wire::decode_job_spec(buffer);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->algorithm, spec.algorithm);
  EXPECT_EQ(decoded->n_a, spec.n_a);
  EXPECT_EQ(decoded->n_ab, spec.n_ab);
  EXPECT_EQ(decoded->n_b, spec.n_b);
  EXPECT_EQ(decoded->q, spec.q);
  EXPECT_EQ(decoded->data_seed, spec.data_seed);
  EXPECT_EQ(decoded->weight, spec.weight);
  EXPECT_TRUE(decoded->verify);

  // Any truncation is a clean decode failure, never a read overrun.
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    const wire::ByteBuffer truncated(buffer.begin(),
                                     buffer.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(wire::decode_job_spec(truncated).has_value());
  }

  JobResult result;
  result.state = JobState::kCompleted;
  result.wall_seconds = 1.5;
  result.chunks_processed = 9;
  result.updates_performed = 720;
  result.workers_used = 3;
  result.workers_failed = 1;
  result.verified = true;
  result.max_abs_error = 1e-12;
  result.priced_throughput = 123.25;
  result.c = matrix::Matrix(3, 5, 0.0);
  for (std::size_t i = 0; i < result.c.size(); ++i)
    result.c.data()[i] = static_cast<double>(i) * 0.5;
  wire::ByteBuffer out;
  wire::encode_job_result(result, out);
  const auto round = wire::decode_job_result(out);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->state, JobState::kCompleted);
  EXPECT_EQ(round->chunks_processed, 9u);
  EXPECT_EQ(round->updates_performed, 720u);
  EXPECT_EQ(round->workers_used, 3);
  EXPECT_EQ(round->workers_failed, 1);
  EXPECT_TRUE(round->verified);
  EXPECT_EQ(round->priced_throughput, 123.25);
  expect_bitwise_equal(round->c, result.c);
  out.pop_back();
  EXPECT_FALSE(wire::decode_job_result(out).has_value());
}

// ---- shm transport: arena accounting across jobs ----------------------------

TEST(Service, ShmFleetLeaksNoArenaSlotsAcrossJobs) {
#if !defined(HMXP_TSAN)
#if defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#endif
#endif
#if defined(HMXP_TSAN)
  GTEST_SKIP() << "forked shm workers are out of TSan's scope";
#endif
  DaemonConfig config = base_config(3);
  config.executor.transport = runtime::TransportKind::kShm;
  Daemon daemon(config);
  Client client(daemon);
  for (std::uint64_t seed = 61; seed <= 63; ++seed) {
    const JobSpec spec = small_spec(seed);
    const JobResult result = client.run(spec);
    ASSERT_EQ(result.state, JobState::kCompleted) << result.error;
    expect_bitwise_equal(result.c, standalone_product(spec, test_platform(3)));
  }
  daemon.shutdown();
  const runtime::TransportStats stats = daemon.fleet().transport_stats();
  EXPECT_GT(stats.arena_slots, 0u);
  EXPECT_EQ(stats.arena_leaked_slots, 0u)
      << "shared-arena slots still held after three jobs drained";
  EXPECT_EQ(daemon.fleet().pool().stats().outstanding, 0u);
}

}  // namespace
}  // namespace hmxp::service
