// Tests for the zero-copy shm transport: SharedArena slot accounting
// (acquire/release, owner-tagged crash reclamation, the benign
// double-release race, leak counters, cross-thread stress), descriptor
// frame round-trips against a real arena, cross-transport parity
// (thread vs shm backends produce identical decision sequences and
// bit-for-bit identical C for every registered scheduler), SIGKILL'd
// workers as recoverable failures WITH no arena slot leaked, the
// zero-copy stats the transport reports, and the core facade's
// Backend::kShm plumbing.
//
// Like the process suite, everything that forks worker processes SKIPS
// under ThreadSanitizer (fork from a multithreaded parent breaks the
// TSan runtime); the arena unit and stress tests stay, keeping the
// shared-memory atomics under the sanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/run.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/shared_arena.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#endif

#if defined(HMXP_TSAN)
#define HMXP_SKIP_UNDER_TSAN()                                   \
  GTEST_SKIP() << "shm transport forks worker processes, which " \
                  "ThreadSanitizer does not support"
#else
#define HMXP_SKIP_UNDER_TSAN() \
  do {                         \
  } while (false)
#endif

namespace hmxp::runtime {
namespace {

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- SharedArena ------------------------------------------------------------

TEST(SharedArena, AcquireReleaseRecountsExactly) {
  SharedArena arena(4, 8);
  EXPECT_EQ(arena.slot_count(), 4u);
  EXPECT_EQ(arena.slot_doubles(), 8u);
  EXPECT_EQ(arena.in_use(), 0u);

  auto slot = arena.try_acquire(/*owner=*/0);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(arena.in_use(), 1u);
  // The slot's storage is real, shared, writable memory.
  for (std::size_t i = 0; i < arena.slot_doubles(); ++i)
    slot->data[i] = static_cast<double>(i);
  EXPECT_EQ(arena.slot_data(slot->index), slot->data);

  EXPECT_TRUE(arena.release(slot->index));
  EXPECT_EQ(arena.in_use(), 0u);
  const SharedArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.acquires, 1u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.peak_in_use, 1u);
}

TEST(SharedArena, ExhaustionIsNonBlockingAndRecoverable) {
  SharedArena arena(2, 4);
  auto first = arena.try_acquire(0);
  auto second = arena.try_acquire(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Full: the master's allocate_payload loop would now pump and retry.
  EXPECT_FALSE(arena.try_acquire(2).has_value());
  EXPECT_TRUE(arena.release(first->index));
  auto third = arena.try_acquire(2);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->index, first->index);  // slots recycle
}

TEST(SharedArena, CrashReclamationSweepsOnlyTheDeadWorkersSlots) {
  SharedArena arena(6, 4);
  auto w0_a = arena.try_acquire(0);
  auto w0_b = arena.try_acquire(0);
  auto w1 = arena.try_acquire(1);
  ASSERT_TRUE(w0_a && w0_b && w1);
  EXPECT_EQ(arena.in_use(), 3u);

  // Worker 0 is SIGKILL'd: everything tagged 0 comes back, worker 1's
  // slot is untouched.
  EXPECT_EQ(arena.release_all_owned_by(0), 2u);
  EXPECT_EQ(arena.in_use(), 1u);
  EXPECT_EQ(arena.release_all_owned_by(0), 0u);  // idempotent

  // The benign race: a reclaimed slot's straggling release is a no-op,
  // and the counters stay balanced.
  EXPECT_FALSE(arena.release(w0_a->index));
  EXPECT_EQ(arena.in_use(), 1u);

  EXPECT_EQ(arena.release_all(), 1u);  // the leak detector
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.release_all(), 0u);
}

TEST(SharedArena, ConcurrentAcquireReleaseKeepsEverySlotAccounted) {
  // The arena's atomics are the only synchronization between master and
  // workers; hammer them from racing threads (this test runs under
  // every sanitizer, including TSan). Each thread loops acquire ->
  // write -> verify -> release; no slot may be handed to two owners.
  constexpr std::size_t kSlots = 8;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  SharedArena arena(kSlots, 16);
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &failed, t] {
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        auto slot = arena.try_acquire(static_cast<std::uint32_t>(t));
        if (!slot.has_value()) continue;  // full: another thread owns it
        const double tag =
            static_cast<double>(t * kRounds + round);
        for (std::size_t i = 0; i < arena.slot_doubles(); ++i)
          slot->data[i] = tag;
        for (std::size_t i = 0; i < arena.slot_doubles(); ++i)
          if (slot->data[i] != tag) failed.store(true);  // shared owner!
        if (!arena.release(slot->index)) failed.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(arena.in_use(), 0u);
  const SharedArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.acquires, stats.releases);
  EXPECT_LE(stats.peak_in_use, kSlots);
}

// ---- descriptor frames ------------------------------------------------------

sim::ChunkPlan sample_plan() {
  sim::ChunkPlan plan;
  plan.rect = {1, 3, 2, 6};
  plan.steps.push_back({12, 8, 0, 1});
  plan.steps.push_back({12, 8, 1, 2});
  plan.steps.push_back({6, 8, 2, 3});
  plan.prefetch_depth = 0;
  plan.peak_override = 17;
  return plan;
}

/// Packs `values` into a fresh arena slot and wraps it as a payload.
Payload pack_slot(SharedArena& arena, std::uint32_t owner,
                  const std::vector<double>& values) {
  auto slot = arena.try_acquire(owner);
  EXPECT_TRUE(slot.has_value());
  std::memcpy(slot->data, values.data(), values.size() * sizeof(double));
  return Payload::arena_view(&arena, slot->index, slot->data, values.size());
}

TEST(ShmSerde, DescriptorFramesRoundTripWithoutCopyingPayloads) {
  SharedArena arena(8, 16);
  {
    ChunkMessage message;
    message.plan = sample_plan();
    message.element_rows = 2;
    message.element_cols = 3;
    message.c = pack_slot(arena, 0, {1.5, -2.25, 3.0, 0.0, 1e-300, 6.5});

    serde::ByteBuffer wire;
    serde::encode_chunk_ref(message, wire);
    // The frame is metadata-sized: the six payload doubles stay put.
    EXPECT_LT(wire.size(), 256u);
    const std::uint64_t length = serde::decode_length(wire.data());
    ASSERT_EQ(wire.size(), serde::kLengthBytes + length);

    const ChunkMessage decoded = serde::decode_chunk_ref(
        wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
        arena);
    EXPECT_EQ(decoded.plan.rect, message.plan.rect);
    EXPECT_EQ(decoded.plan.steps, message.plan.steps);
    EXPECT_EQ(decoded.element_rows, message.element_rows);
    EXPECT_EQ(decoded.element_cols, message.element_cols);
    // Zero-copy means the SAME bytes, not equal bytes.
    EXPECT_EQ(decoded.c.data(), message.c.data());
    EXPECT_EQ(decoded.c, message.c);
    // The decoded message owns the slot now; forget the encoder's view
    // so only one release happens (as the endpoints do after shipping).
    message.c.detach();
  }
  {
    OperandMessage message;
    message.step = 4;
    message.k_elem_begin = 32;
    message.k_elems = 2;
    message.a = pack_slot(arena, 1, {1.0, 2.0, 3.0, 4.0});
    message.b = pack_slot(arena, 1, {5.0, 6.0});
    serde::ByteBuffer wire;
    serde::encode_operand_ref(message, wire);
    const std::uint64_t length = serde::decode_length(wire.data());
    const OperandMessage decoded = serde::decode_operand_ref(
        wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
        arena);
    EXPECT_EQ(decoded.step, message.step);
    EXPECT_EQ(decoded.a.data(), message.a.data());
    EXPECT_EQ(decoded.b.data(), message.b.data());
    EXPECT_EQ(decoded.a, message.a);
    EXPECT_EQ(decoded.b, message.b);
    message.a.detach();
    message.b.detach();
  }
  {
    ResultMessage message;
    message.plan = sample_plan();
    message.element_rows = 1;
    message.element_cols = 2;
    message.c = pack_slot(arena, 2, {9.0, -8.0});
    message.updates_performed = 3;
    message.step_seconds = {0.25, 0.125, 0.5};
    serde::ByteBuffer wire;
    serde::encode_result_ref(message, wire);
    const std::uint64_t length = serde::decode_length(wire.data());
    const ResultMessage decoded = serde::decode_result_ref(
        wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length),
        arena);
    EXPECT_EQ(decoded.c.data(), message.c.data());
    EXPECT_EQ(decoded.updates_performed, message.updates_performed);
    EXPECT_EQ(decoded.step_seconds, message.step_seconds);
    message.c.detach();
  }
  // Every decoded payload above released its slot on destruction.
  EXPECT_EQ(arena.in_use(), 0u);
}

TEST(ShmSerde, DescriptorValidationRejectsCorruptSlots) {
  SharedArena arena(2, 4);
  ChunkMessage message;
  message.plan = sample_plan();
  message.element_rows = 1;
  message.element_cols = 2;
  message.c = pack_slot(arena, 0, {1.0, 2.0});
  serde::ByteBuffer wire;
  serde::encode_chunk_ref(message, wire);
  const std::uint64_t length = serde::decode_length(wire.data());

  // Truncated frame.
  EXPECT_THROW(serde::decode_chunk_ref(wire.data() + serde::kLengthBytes,
                                       static_cast<std::size_t>(length) - 3,
                                       arena),
               std::runtime_error);
  // A slot index beyond the arena must be rejected, not dereferenced:
  // decode against a SMALLER arena than the encoder's.
  SharedArena tiny(1, 4);
  auto hijack = tiny.try_acquire(0);  // make slot 0 the only valid one
  ASSERT_TRUE(hijack.has_value());
  serde::ByteBuffer corrupt;
  {
    ChunkMessage big;
    big.plan = sample_plan();
    big.element_rows = 1;
    big.element_cols = 2;
    auto slot = arena.try_acquire(1);
    ASSERT_TRUE(slot.has_value());
    ASSERT_GE(slot->index, tiny.slot_count());  // out of range for `tiny`
    big.c = Payload::arena_view(&arena, slot->index, slot->data, 2);
    serde::encode_chunk_ref(big, corrupt);
  }
  const std::uint64_t corrupt_length = serde::decode_length(corrupt.data());
  EXPECT_THROW(
      serde::decode_chunk_ref(corrupt.data() + serde::kLengthBytes,
                              static_cast<std::size_t>(corrupt_length), tiny),
      std::runtime_error);
  // An in-range slot whose length overflows the slot size likewise.
  serde::ByteBuffer oversize;
  {
    ResultMessage big;
    big.plan = sample_plan();
    big.element_rows = 1;
    big.element_cols = 8;
    auto slot = tiny.try_acquire(0);
    (void)slot;  // tiny is full; reuse the hijacked slot's index
    big.c = Payload::arena_view(&tiny, hijack->index, hijack->data, 8);
    serde::encode_result_ref(big, oversize);
    big.c.detach();  // keep the slot with `hijack`
  }
  const std::uint64_t oversize_length = serde::decode_length(oversize.data());
  EXPECT_THROW(serde::decode_result_ref(oversize.data() + serde::kLengthBytes,
                                        static_cast<std::size_t>(
                                            oversize_length),
                                        tiny),
               std::runtime_error);
}

// ---- cross-transport parity -------------------------------------------------

platform::Platform hetero_platform() {
  std::vector<platform::WorkerSpec> specs = {
      {0.010, 0.001, 30, "alpha"},
      {0.013, 0.002, 60, "beta"},
      {0.017, 0.0015, 140, "gamma"},
  };
  return platform::Platform("parity", specs);
}

struct TransportRun {
  ExecutorReport report;
  std::vector<sim::Decision> decisions;
  matrix::Matrix c;
};

TransportRun run_transport(sim::Scheduler& scheduler,
                           TransportKind transport,
                           const platform::Platform& plat,
                           const matrix::Partition& part) {
  const auto a = random_matrix(part.n_a(), part.n_ab(), 11);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 12);
  TransportRun run{.report = {}, .decisions = {},
                   .c = random_matrix(part.n_a(), part.n_b(), 13)};
  ExecutorOptions options;
  options.transport = transport;
  run.report = execute_online(scheduler, plat, part, a, b, run.c, options,
                              &run.decisions);
  return run;
}

TransportRun run_live(const std::string& algorithm, TransportKind transport,
                      const platform::Platform& plat,
                      const matrix::Partition& part) {
  auto scheduler = sched::Registry::instance().make(algorithm, plat, part);
  return run_transport(*scheduler, transport, plat, part);
}

TEST(ShmBackend, EveryRegisteredSchedulerLiveParityWithThreadTransport) {
  HMXP_SKIP_UNDER_TSAN();
  // Same order-invariant guarantee the process suite pins: on a
  // homogeneous platform every layout groups the same k sets, so the
  // two transports must agree on decision count, full coverage, and
  // bit-for-bit C whatever the live interleaving.
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    const TransportRun threaded =
        run_live(algorithm, TransportKind::kThread, plat, part);
    const TransportRun shm =
        run_live(algorithm, TransportKind::kShm, plat, part);

    EXPECT_TRUE(threaded.report.verified);
    EXPECT_TRUE(shm.report.verified);
    EXPECT_EQ(shm.report.transport, "shm");

    // SP-* decision streams react to measured wall drift: a scheduling
    // hiccup can legitimately trip the speculation gate on one
    // transport and not the other, adding duplicate/cancel decisions
    // and wasted twin updates. Their guarantee is the bit-for-bit C
    // below; the counts are only pinned for drift-blind schedulers.
    if (algorithm.rfind("SP-", 0) != 0) {
      EXPECT_EQ(shm.decisions.size(), threaded.decisions.size());
      EXPECT_EQ(shm.report.updates_performed,
                threaded.report.updates_performed);
      EXPECT_EQ(shm.report.chunks_processed,
                threaded.report.chunks_processed);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(shm.c, threaded.c), 0.0);
    // Clean runs leave the arena empty.
    EXPECT_EQ(shm.report.transport_stats.arena_leaked_slots, 0u);
  }
}

TEST(ShmBackend, EveryRegisteredSchedulerReplaysIdenticallyOnShm) {
  HMXP_SKIP_UNDER_TSAN();
  // The deterministic half: the recorded schedule replays on the shm
  // transport with EXACTLY the simulator's decision sequence, the same
  // model projection, and bit-for-bit the thread transport's C.
  const platform::Platform plat = hetero_platform();
  const matrix::Partition part(52, 70, 100, 8);

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    auto probe = sched::Registry::instance().make(algorithm, plat, part);
    std::vector<sim::Decision> simulated;
    const sim::RunResult sim_result =
        sim::simulate(*probe, plat, part, false, &simulated);

    TransportRun runs[2];
    const TransportKind kinds[2] = {TransportKind::kThread,
                                    TransportKind::kShm};
    for (int which = 0; which < 2; ++which) {
      sim::ReplayScheduler replay(algorithm, simulated);
      runs[which] = run_transport(replay, kinds[which], plat, part);
      const TransportRun& run = runs[which];
      EXPECT_TRUE(run.report.verified);
      ASSERT_EQ(run.decisions.size(), simulated.size());
      for (std::size_t i = 0; i < simulated.size(); ++i) {
        EXPECT_EQ(run.decisions[i].comm, simulated[i].comm)
            << transport_kind_name(kinds[which]) << " decision " << i;
        EXPECT_EQ(run.decisions[i].worker, simulated[i].worker)
            << transport_kind_name(kinds[which]) << " decision " << i;
      }
      EXPECT_DOUBLE_EQ(run.report.result.makespan, sim_result.makespan);
      EXPECT_EQ(run.report.result.comm_blocks, sim_result.comm_blocks);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(runs[1].c, runs[0].c), 0.0);
  }
}

TEST(ShmBackend, StatsShowZeroCopyPayloadsAndDescriptorSizedWire) {
  HMXP_SKIP_UNDER_TSAN();
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(40, 40, 56, 8);

  const TransportRun forked =
      run_live("ODDOML", TransportKind::kProcess, plat, part);
  const TransportRun shm = run_live("ODDOML", TransportKind::kShm, plat, part);

  const TransportStats& stats = shm.report.transport_stats;
  // Same message counts as the serializing transport...
  EXPECT_EQ(stats.messages_sent,
            forked.report.transport_stats.messages_sent);
  EXPECT_EQ(stats.messages_received,
            forked.report.transport_stats.messages_received);
  // ...but the payload bytes crossed through the arena, not the wire:
  // the socket carries only descriptor-sized control frames.
  EXPECT_GT(stats.bytes_zero_copied, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_LT(stats.bytes_sent, stats.bytes_zero_copied / 10);
  EXPECT_LT(stats.bytes_sent, forked.report.transport_stats.bytes_sent);
  // The zero-copy volume matches what the process transport serialized,
  // give or take frame metadata: identical messages moved.
  EXPECT_LT(stats.bytes_zero_copied,
            forked.report.transport_stats.bytes_sent +
                forked.report.transport_stats.bytes_received);
  // Arena occupancy: sized workers x 16, actually used, never leaked.
  EXPECT_EQ(stats.arena_slots, 3u * 16u);
  EXPECT_GT(stats.arena_peak_slots, 0u);
  EXPECT_LE(stats.arena_peak_slots, stats.arena_slots);
  EXPECT_EQ(stats.arena_leaked_slots, 0u);
  // The process transport reports no arena (it has none).
  EXPECT_EQ(forked.report.transport_stats.arena_slots, 0u);
  EXPECT_EQ(forked.report.transport_stats.bytes_zero_copied, 0u);
}

// ---- worker death and slot reclamation --------------------------------------

TEST(ShmBackend, SigkilledWorkerRecoversBitForBitWithoutLeakingSlots) {
  HMXP_SKIP_UNDER_TSAN();
  // The process suite's SIGKILL recovery, with the shm-specific stake:
  // the dead child held arena slots (its resident chunk, queued
  // operands) that no destructor will ever release. The endpoint drain
  // must sweep every slot tagged with the dead worker, the run must
  // finish with the fault-free C bit for bit, and the arena must end
  // empty -- leaked slots would starve long fault-tolerant runs.
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 21);
  const auto b = random_matrix(40, 40, 22);
  const matrix::Matrix c_initial = random_matrix(40, 40, 23);

  matrix::Matrix c_clean = c_initial;
  {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kShm;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_clean, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 0);
    EXPECT_EQ(report.transport_stats.arena_leaked_slots, 0u);
  }

  matrix::Matrix c_faulty = c_initial;
  {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kShm;
    options.tolerate_faults = true;
    // Runs inside the forked child: a REAL SIGKILL, not an exception.
    options.fault_hook = [](int worker, std::size_t step) {
      if (worker == 1 && step == 1) std::raise(SIGKILL);
    };
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_faulty, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 1);
    EXPECT_GT(report.transport_stats.arena_peak_slots, 0u);
    EXPECT_EQ(report.transport_stats.arena_leaked_slots, 0u);
  }

  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_faulty, c_clean), 0.0);
}

TEST(ShmBackend, StrictModeSurfacesTheChildsRootCause) {
  HMXP_SKIP_UNDER_TSAN();
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 31);
  const auto b = random_matrix(40, 40, 32);
  matrix::Matrix c(40, 40, 0.0);

  auto scheduler = sched::Registry::instance().make("ODDOML", plat, part);
  ExecutorOptions options;
  options.transport = TransportKind::kShm;
  options.faults.add(/*worker=*/1, /*at=*/0.0);
  try {
    execute_online(*scheduler, plat, part, a, b, c, options);
    FAIL() << "expected the scheduled fault to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("scheduled fault"),
              std::string::npos)
        << error.what();
  }
  // The run failed cleanly (children reaped, arena unmapped): a retry
  // on a fresh transport works.
  auto retry = sched::Registry::instance().make("ODDOML", plat, part);
  const ExecutorReport report =
      execute_online(*retry, plat, part, a, b, c, options = {});
  EXPECT_TRUE(report.verified);
}

}  // namespace
}  // namespace hmxp::runtime

// ---- the core facade on Backend::kShm ---------------------------------------

namespace hmxp::core {
namespace {

TEST(ShmBackend, CoreRunsCellsOnTheShmBackend) {
  HMXP_SKIP_UNDER_TSAN();
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  const RunReport simulated = run_algorithm("ORROML", plat, part);
  OnlineOptions online;
  online.backend = Backend::kShm;
  online.data_seed = 7;
  const RunReport executed =
      run_algorithm_online("ORROML", plat, part, online);

  EXPECT_EQ(executed.backend, Backend::kShm);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_GT(executed.online_wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(executed.result.makespan, simulated.result.makespan);
  EXPECT_EQ(executed.result.decisions, simulated.result.decisions);

  // The experiment grid switches the whole run with one knob.
  ExperimentOptions grid;
  grid.threads = 1;
  grid.backend = Backend::kShm;
  grid.online.data_seed = 7;
  const auto results = run_experiment({Instance{"cell", plat, part}},
                                      {"ORROML", "ODDOML"}, grid);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].cell_ok(0)) << results[0].errors[0];
  EXPECT_TRUE(results[0].cell_ok(1)) << results[0].errors[1];
  EXPECT_EQ(results[0].reports[0].backend, Backend::kShm);
  EXPECT_DOUBLE_EQ(results[0].reports[0].result.makespan,
                   simulated.result.makespan);
}

TEST(ShmBackend, BackendNamesParseBothWays) {
  EXPECT_STREQ(backend_name(Backend::kShm), "shm");
  EXPECT_EQ(parse_backend("shm"), Backend::kShm);
  EXPECT_EQ(parse_backend("SHMEM"), Backend::kShm);
  EXPECT_EQ(parse_backend("shared-memory"), Backend::kShm);
  EXPECT_EQ(parse_backend("process"), Backend::kProcess);
  EXPECT_EQ(parse_backend("bogus"), std::nullopt);
  EXPECT_STREQ(
      runtime::transport_kind_name(runtime::TransportKind::kShm), "shm");
  EXPECT_EQ(runtime::parse_transport_kind("shm"),
            runtime::TransportKind::kShm);
}

}  // namespace
}  // namespace hmxp::core
