// Tests for the dense simplex LP solver, including a brute-force
// cross-check on random small programs.
#include <gtest/gtest.h>

#include <cmath>

#include "model/simplex.hpp"
#include "util/rng.hpp"

namespace hmxp::model {
namespace {

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y  s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  -> opt 36 at (2,6).
  SimplexSolver solver({3.0, 5.0});
  solver.add_constraint_le({1.0, 0.0}, 4.0);
  solver.add_constraint_le({0.0, 2.0}, 12.0);
  solver.add_constraint_le({3.0, 2.0}, 18.0);
  const LpSolution solution = solver.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution.x[1], 6.0, 1e-9);
}

TEST(Simplex, UnboundedDetected) {
  SimplexSolver solver({1.0, 1.0});
  solver.add_constraint_le({1.0, -1.0}, 1.0);  // x - y <= 1: y free upward
  EXPECT_EQ(solver.solve().status, LpStatus::kUnbounded);
}

TEST(Simplex, NoConstraints) {
  SimplexSolver positive({1.0});
  EXPECT_EQ(positive.solve().status, LpStatus::kUnbounded);
  SimplexSolver negative({-1.0});
  const LpSolution solution = negative.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-12);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= -1 with x >= 0 is infeasible.
  SimplexSolver solver({1.0});
  solver.add_constraint_le({1.0}, -1.0);
  EXPECT_EQ(solver.solve().status, LpStatus::kInfeasible);
}

TEST(Simplex, GreaterEqualConstraints) {
  // max -x s.t. x >= 2  -> optimum -2 at x = 2 (phase 1 required).
  SimplexSolver solver({-1.0});
  solver.add_constraint_ge({1.0}, 2.0);
  const LpSolution solution = solver.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -2.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints meet at the optimum; Bland's rule must not cycle.
  SimplexSolver solver({1.0, 1.0});
  solver.add_constraint_le({1.0, 0.0}, 1.0);
  solver.add_constraint_le({0.0, 1.0}, 1.0);
  solver.add_constraint_le({1.0, 1.0}, 2.0);
  solver.add_constraint_le({2.0, 1.0}, 3.0);
  const LpSolution solution = solver.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroRhsRows) {
  // max x s.t. x - y <= 0; y <= 5  -> x = y = 5.
  SimplexSolver solver({1.0, 0.0});
  solver.add_constraint_le({1.0, -1.0}, 0.0);
  solver.add_constraint_le({0.0, 1.0}, 5.0);
  const LpSolution solution = solver.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-9);
}

// Brute-force cross-check: random 2-variable LPs with bounded feasible
// regions, solved by dense grid search. The simplex optimum must weakly
// dominate every feasible grid point and itself be feasible.
class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, DominatesGridSearch) {
  util::Rng rng(GetParam());
  const double c0 = rng.uniform(-2.0, 3.0);
  const double c1 = rng.uniform(-2.0, 3.0);
  SimplexSolver solver({c0, c1});
  std::vector<std::pair<std::vector<double>, double>> rows;
  // Box to keep it bounded, plus random cuts.
  rows.push_back({{1.0, 0.0}, rng.uniform(1.0, 10.0)});
  rows.push_back({{0.0, 1.0}, rng.uniform(1.0, 10.0)});
  for (int k = 0; k < 3; ++k) {
    rows.push_back({{rng.uniform(-1.0, 2.0), rng.uniform(-1.0, 2.0)},
                    rng.uniform(0.5, 8.0)});
  }
  for (const auto& [coeffs, rhs] : rows) solver.add_constraint_le(coeffs, rhs);

  const LpSolution solution = solver.solve();
  ASSERT_EQ(solution.status, LpStatus::kOptimal);

  // Feasibility of the reported optimum.
  for (const auto& [coeffs, rhs] : rows) {
    EXPECT_LE(coeffs[0] * solution.x[0] + coeffs[1] * solution.x[1],
              rhs + 1e-6);
  }
  EXPECT_GE(solution.x[0], -1e-9);
  EXPECT_GE(solution.x[1], -1e-9);

  // Dominance over a fine grid of feasible points.
  const int steps = 60;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      const double x = 10.0 * i / steps;
      const double y = 10.0 * j / steps;
      bool feasible = true;
      for (const auto& [coeffs, rhs] : rows) {
        if (coeffs[0] * x + coeffs[1] * y > rhs) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        EXPECT_GE(solution.objective, c0 * x + c1 * y - 1e-6)
            << "grid point (" << x << "," << y << ") beats simplex";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace hmxp::model
