// Snapshot/restore semantics of the split engine: restore() must be a
// bit-exact rewind (state and trace), engines sharing one
// InstanceContext must behave like independent engines, and driving a
// schedule through constant snapshot/execute/restore/re-execute churn
// must land on exactly the makespan of an untouched fresh-engine run --
// for every registered algorithm on a random platform.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "platform/generator.hpp"
#include "sim/scheduler.hpp"
#include "testing_support.hpp"
#include "util/rng.hpp"

namespace hmxp {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

class SnapshotAllAlgorithms
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(SnapshotAllAlgorithms, ProbedRunMatchesFreshRunExactly) {
  util::Rng rng(20080216);
  const platform::Platform plat = platform::random_platform(rng);
  const auto part = blocks(12, 6, 30);

  auto fresh_scheduler = core::make_scheduler(GetParam(), plat, part);
  const double fresh =
      sim::simulate(*fresh_scheduler, plat, part, true).makespan;

  // Same schedule, but every decision is first executed hypothetically
  // and rolled back before being executed for real -- the scratch-probe
  // idiom of the lookahead schedulers, applied at every single step.
  auto probed_scheduler = core::make_scheduler(GetParam(), plat, part);
  sim::Engine engine(plat, part, /*record_trace=*/true);
  while (true) {
    const sim::Decision decision = probed_scheduler->next(engine);
    if (decision.kind == sim::Decision::Kind::kDone) break;
    const sim::EngineState snapshot = engine.snapshot();
    engine.execute(decision);
    engine.restore(snapshot);
    engine.execute(decision);
  }
  EXPECT_DOUBLE_EQ(engine.finalize(), fresh);
  // The rewind also rolled back trace events: invariants still hold and
  // no event was recorded twice.
  EXPECT_TRUE(engine.trace().one_port_respected());
  EXPECT_TRUE(engine.trace().compute_serialized());
}

INSTANTIATE_TEST_SUITE_P(Registry, SnapshotAllAlgorithms,
                         ::testing::ValuesIn(core::all_algorithms()),
                         [](const auto& info) {
                           return testing::param_safe(
                               core::algorithm_name(info.param));
                         });

TEST(Snapshot, SharedContextEnginesAreIndependent) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(10, 5, 25);
  const auto context = sim::InstanceContext::make(plat, part);

  sim::Engine real(context, /*record_trace=*/false);
  sim::Engine scratch(context, /*record_trace=*/false);

  auto scheduler = core::make_scheduler("ODDOML", plat, part);
  // Advance the real engine a few decisions, mirroring into scratch via
  // snapshot/restore; mutations of one must not leak into the other.
  for (int step = 0; step < 5; ++step) {
    const sim::Decision decision = scheduler->next(real);
    ASSERT_EQ(decision.kind, sim::Decision::Kind::kComm);
    const double before = real.now();
    scratch.restore(real.snapshot());
    EXPECT_DOUBLE_EQ(scratch.now(), real.now());
    scratch.execute(decision);   // hypothetical
    EXPECT_DOUBLE_EQ(real.now(), before);  // real engine untouched
    real.execute(decision);      // for real
    EXPECT_DOUBLE_EQ(scratch.now(), real.now());
  }
}

TEST(Snapshot, RestoreRejectsForeignSnapshots) {
  const auto part = blocks(10, 5, 25);
  sim::Engine small(platform::Platform::homogeneous(2, 1.0, 1.0, 60), part);
  sim::Engine large(platform::Platform::homogeneous(5, 1.0, 1.0, 60), part);
  EXPECT_THROW(large.restore(small.snapshot()), std::invalid_argument);

  sim::Engine other_grid(platform::Platform::homogeneous(2, 1.0, 1.0, 60),
                         blocks(10, 5, 30));
  EXPECT_THROW(other_grid.restore(small.snapshot()), std::invalid_argument);
}

TEST(Snapshot, EngineCopyStillSharesContext) {
  // Value-semantics copies remain legal and cheap: the copy shares the
  // immutable context rather than duplicating platform and partition.
  const platform::Platform plat = platform::hetero_compute();
  const auto part = blocks(8, 4, 16);
  sim::Engine engine(plat, part);
  sim::Engine copy = engine;
  EXPECT_EQ(copy.context().get(), engine.context().get());
}

}  // namespace
}  // namespace hmxp
