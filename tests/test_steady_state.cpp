// Tests for the Table 1 steady-state program and the Table 2
// counterexample machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/steady_state.hpp"
#include "util/rng.hpp"

namespace hmxp::model {
namespace {

TEST(SteadyState, SingleWorkerComputeBound) {
  // One worker that the port can overfeed: throughput = 1/w.
  const std::vector<SteadyWorker> workers = {SteadyWorker{0.01, 1.0, 4}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_NEAR(solution.throughput, 1.0, 1e-12);
  EXPECT_TRUE(solution.saturated[0]);
  EXPECT_NEAR(solution.y[0], 2.0 * solution.x[0] / 4.0, 1e-12);
}

TEST(SteadyState, SingleWorkerPortBound) {
  // Port-limited: y c = 1 -> y = 1/c, x = y mu / 2.
  const std::vector<SteadyWorker> workers = {SteadyWorker{1.0, 0.001, 4}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_NEAR(solution.y[0], 1.0, 1e-12);
  EXPECT_NEAR(solution.x[0], 2.0, 1e-12);
  EXPECT_FALSE(solution.saturated[0]);
  EXPECT_NEAR(solution.port_share[0], 1.0, 1e-12);
}

TEST(SteadyState, Table2PlatformSaturatesPortExactly) {
  // c = {1, x}, w = {2, 2x}, mu = 2: sum 2c_i/(mu_i w_i) = 1 for all x.
  for (const double x : {1.0, 2.0, 5.0, 100.0}) {
    const auto workers = table2_platform(x);
    const SteadyStateSolution solution = solve_bandwidth_centric(workers);
    EXPECT_TRUE(solution.saturated[0]);
    EXPECT_TRUE(solution.saturated[1]);
    const double port =
        solution.port_share[0] + solution.port_share[1];
    EXPECT_NEAR(port, 1.0, 1e-12) << "x=" << x;
    EXPECT_NEAR(solution.throughput, 1.0 / 2.0 + 1.0 / (2.0 * x), 1e-12);
  }
}

TEST(SteadyState, GreedyEnrollsByBandwidthCentricOrder) {
  // Worker 2 has the better 2c/mu; worker 1 should only get leftovers.
  const std::vector<SteadyWorker> workers = {
      SteadyWorker{1.0, 0.1, 2},   // 2c/mu = 1.0, full share would be 20c
      SteadyWorker{0.1, 0.2, 4},   // 2c/mu = 0.05
  };
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_TRUE(solution.saturated[1]);
  EXPECT_FALSE(solution.saturated[0]);
  // Worker 2 saturated: x = 5, port share = 2*5/4*0.1 = 0.25; worker 1
  // takes the leftover 0.75 of port: y = 0.75, x = 0.75.
  EXPECT_NEAR(solution.x[1], 5.0, 1e-9);
  EXPECT_NEAR(solution.x[0], 0.75, 1e-9);
  EXPECT_NEAR(solution.throughput, 5.75, 1e-9);
}

// Property: the closed-form greedy and the simplex LP agree on random
// heterogeneous platforms.
class SteadyStateRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SteadyStateRandom, GreedyMatchesSimplex) {
  util::Rng rng(GetParam());
  const int p = static_cast<int>(rng.uniform_int(1, 8));
  std::vector<SteadyWorker> workers;
  for (int i = 0; i < p; ++i) {
    workers.push_back(SteadyWorker{rng.uniform(0.001, 0.1),
                                   rng.uniform(0.0001, 0.01),
                                   rng.uniform_int(1, 120)});
  }
  const SteadyStateSolution greedy = solve_bandwidth_centric(workers);
  const SteadyStateSolution lp = solve_lp(workers);
  EXPECT_NEAR(greedy.throughput, lp.throughput,
              1e-6 * std::max(1.0, greedy.throughput));
  // Both respect the port and compute constraints.
  double greedy_port = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    greedy_port += greedy.y[i] * workers[i].c;
    EXPECT_LE(greedy.x[i] * workers[i].w, 1.0 + 1e-9);
    EXPECT_LE(greedy.x[i] / static_cast<double>(workers[i].mu * workers[i].mu),
              greedy.y[i] / (2.0 * static_cast<double>(workers[i].mu)) + 1e-9);
  }
  EXPECT_LE(greedy_port, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteadyStateRandom,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 110u, 121u, 132u));

TEST(SteadyState, BufferDemandGrowsUnboundedOnTable2) {
  // The heart of the Table 2 counterexample: sustaining the bandwidth-
  // centric rates demands ever more buffers on P1 as x grows.
  // Below x = 16 the layout minimum (12 buffers for mu = 2) dominates;
  // past it, demand grows like sqrt(8x) without bound.
  double previous = 0.0;
  for (const double x : {16.0, 64.0, 256.0, 1024.0}) {
    const auto demand = steady_state_buffer_demand(table2_platform(x));
    EXPECT_GT(demand[0], previous) << "x=" << x;
    previous = demand[0];
  }
  // And it eventually exceeds any fixed memory (mu = 2 needs 12 buffers
  // under the double-buffered layout; demand blows far past that).
  const auto demand = steady_state_buffer_demand(table2_platform(4096.0));
  EXPECT_GT(demand[0], 100.0);
}

TEST(SteadyState, BufferDemandRespectsLayoutMinimum) {
  const auto demand =
      steady_state_buffer_demand({SteadyWorker{0.01, 1.0, 4}});
  EXPECT_GE(demand[0],
            static_cast<double>(double_buffered_footprint(4)));
}

TEST(SteadyState, EnrolledCount) {
  const std::vector<SteadyWorker> workers = {
      SteadyWorker{0.001, 0.1, 10},   // cheap, takes everything
      SteadyWorker{100.0, 0.1, 10},   // port cost absurd, enrolled last
  };
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_EQ(solution.enrolled_count(), 2u);  // leftover still assigned
  EXPECT_TRUE(solution.saturated[0]);
  EXPECT_FALSE(solution.saturated[1]);
}

TEST(SteadyState, ThroughputUpperBoundIsSumOfComputeRates) {
  // With an infinitely fast port, throughput -> sum 1/w_i.
  const std::vector<SteadyWorker> workers = {
      SteadyWorker{1e-9, 0.5, 8}, SteadyWorker{1e-9, 0.25, 8}};
  EXPECT_NEAR(steady_state_throughput(workers), 2.0 + 4.0, 1e-6);
}

TEST(SteadyState, RejectsInvalidWorkers) {
  EXPECT_THROW(solve_bandwidth_centric({}), std::invalid_argument);
  EXPECT_THROW(solve_bandwidth_centric({SteadyWorker{-1.0, 1.0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(solve_bandwidth_centric({SteadyWorker{1.0, -1.0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(solve_bandwidth_centric({SteadyWorker{1.0, 0.0, 2}}),
               std::invalid_argument);
  EXPECT_THROW(table2_platform(0.0), std::invalid_argument);
  // The simplex path keeps the STRICT contract: its tableau cannot take
  // the degenerate inputs the greedy now absorbs for admission control.
  EXPECT_THROW(solve_lp({SteadyWorker{0.0, 1.0, 2}}), std::invalid_argument);
  EXPECT_THROW(solve_lp({SteadyWorker{1.0, 1.0, 0}}), std::invalid_argument);
}

// ---- degenerate inputs ------------------------------------------------------
//
// The admission controller prices platforms AS FOUND: dead workers show
// up as mu = 0, a zero-bandwidth link as c = +infinity, an unmetered
// local link as c = 0. The greedy path must absorb all of them and
// report the platform's honest capacity instead of crashing.

TEST(SteadyState, SingleWorkerDegenerateForms) {
  // A lone healthy worker still prices normally...
  EXPECT_NEAR(steady_state_throughput({SteadyWorker{0.01, 1.0, 4}}), 1.0,
              1e-12);
  // ...a lone memoryless worker contributes nothing...
  EXPECT_EQ(steady_state_throughput({SteadyWorker{0.01, 1.0, 0}}), 0.0);
  // ...and a lone unreachable worker likewise.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(steady_state_throughput({SteadyWorker{inf, 1.0, 4}}), 0.0);
}

TEST(SteadyState, ZeroBandwidthLinkIsPricedOut) {
  // Worker 1 is behind a dead link (c = +inf): it never enrolls, takes
  // no port share, and the platform's throughput is worker 0's alone.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<SteadyWorker> workers = {SteadyWorker{0.01, 1.0, 4},
                                             SteadyWorker{inf, 0.5, 4}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_NEAR(solution.throughput, 1.0, 1e-12);
  EXPECT_EQ(solution.x[1], 0.0);
  EXPECT_EQ(solution.y[1], 0.0);
  EXPECT_EQ(solution.port_share[1], 0.0);
  EXPECT_FALSE(solution.saturated[1]);
}

TEST(SteadyState, MemorylessWorkerIsPricedOut) {
  // mu = 0 is how admission marks a dead (unleasable) worker.
  const std::vector<SteadyWorker> workers = {SteadyWorker{0.01, 1.0, 0},
                                             SteadyWorker{0.01, 0.5, 4}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_EQ(solution.x[0], 0.0);
  EXPECT_NEAR(solution.throughput, 2.0, 1e-12);
  EXPECT_EQ(solution.enrolled_count(), 1u);
}

TEST(SteadyState, FreeLinkSaturatesWithoutPortShare) {
  // c = 0: the worker costs no port time at all, so it saturates at
  // 1/w and the WHOLE port remains for the paying worker.
  const std::vector<SteadyWorker> workers = {SteadyWorker{0.0, 0.25, 4},
                                             SteadyWorker{1.0, 0.001, 4}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_TRUE(solution.saturated[0]);
  EXPECT_EQ(solution.port_share[0], 0.0);
  EXPECT_NEAR(solution.port_share[1], 1.0, 1e-12);
  EXPECT_NEAR(solution.throughput, 4.0 + 2.0, 1e-9);
}

TEST(SteadyState, AllDegenerateYieldsZeroThroughputNotACrash) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<SteadyWorker> workers = {SteadyWorker{inf, 1.0, 4},
                                             SteadyWorker{0.01, 1.0, 0}};
  const SteadyStateSolution solution = solve_bandwidth_centric(workers);
  EXPECT_EQ(solution.throughput, 0.0);
  EXPECT_EQ(solution.enrolled_count(), 0u);
  EXPECT_EQ(steady_state_throughput(workers), 0.0);
}

TEST(SteadyState, BufferDemandSurvivesDegenerateInputs) {
  const double inf = std::numeric_limits<double>::infinity();
  // Excluded workers demand zero buffers; enrolled ones keep their
  // normal demand even with degenerate neighbours in the list.
  const std::vector<SteadyWorker> workers = {SteadyWorker{0.01, 1.0, 4},
                                             SteadyWorker{inf, 1.0, 4},
                                             SteadyWorker{0.01, 1.0, 0}};
  const auto demand = steady_state_buffer_demand(workers);
  ASSERT_EQ(demand.size(), workers.size());
  EXPECT_GT(demand[0], 0.0);
  EXPECT_EQ(demand[1], 0.0);
  EXPECT_EQ(demand[2], 0.0);
  // An all-degenerate platform demands nothing anywhere.
  for (const double d : steady_state_buffer_demand(
           {SteadyWorker{inf, 1.0, 4}, SteadyWorker{0.01, 1.0, 0}}))
    EXPECT_EQ(d, 0.0);
}

}  // namespace
}  // namespace hmxp::model
