// Straggler-speculation suite: proactive redundant chunks with
// cancel-on-first-completion, on both execution backends.
//
//   * engine-level twin semantics: a speculative SendC links two workers
//     over the SAME rectangle without claiming new coverage, the first
//     RecvC commits the blocks and zombifies the loser, the loser's
//     cancel is non-fatal (territory kept, worker schedulable) and its
//     delivered updates move to the wasted-work account;
//   * composition with failure: whichever race member dies, the
//     survivor inherits sole ownership and coverage never tears;
//   * wrapper transparency: on a drift-free instance every SP-*
//     scheduler decides EXACTLY like its inner policy (simulator) and
//     issues zero duplicates while producing a verified C (runtime);
//   * the payoff, deterministically on the simulator: against the
//     4x heavy-straggler schedule, SP-ODDOML's makespan beats plain
//     FT-ODDOML's by >= 20% at identical effective updates;
//   * live cancellation on the threaded runtime: a wall-clock straggler
//     (fault-hook sleeps) triggers a real duplicate, the loser's copy
//     is revoked mid-flight, the product stays bit-for-bit equal to the
//     speculation-free run, and the buffer pool balances to zero leaks;
//   * the same scenario over forked workers (process and shm): cancel
//     frames cross real socket/ring data planes, and on shm the arena
//     ends with zero leaked slots;
//   * SP over FT: speculation composed with fault tolerance survives
//     exception kills and a REAL SIGKILL while staying bit-for-bit.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "platform/perturbation.hpp"
#include "runtime/executor.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "testing_support.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#endif

#if defined(HMXP_TSAN)
#define HMXP_SKIP_UNDER_TSAN()                                    \
  GTEST_SKIP() << "forked worker processes are not supported by " \
                  "ThreadSanitizer"
#else
#define HMXP_SKIP_UNDER_TSAN() \
  do {                         \
  } while (false)
#endif

namespace hmxp {
namespace {

matrix::Partition stress_partition() {
  return matrix::Partition(40, 48, 64, 8);  // r=5, t=6, s=8
}
constexpr model::BlockCount kStressUpdates = 5 * 8 * 6;

platform::Platform stress_platform() {
  std::vector<platform::WorkerSpec> specs = {
      {0.010, 0.0020, 30, "w0"},
      {0.008, 0.0015, 60, "w1"},
      {0.012, 0.0010, 140, "w2"},
      {0.010, 0.0025, 40, "w3"},
  };
  return platform::Platform("straggly", specs);
}

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

/// SP-* registry names paired with the registry spelling of the inner
/// policy they wrap (the parity baseline).
std::vector<std::pair<std::string, std::string>> sp_pairs() {
  return {{"SP-ODDOML", "ODDOML"},
          {"SP-OMMOML", "OMMOML-cal"},
          {"SP-FT-ODDOML", "FT-ODDOML"},
          {"SP-FT-OMMOML", "FT-OMMOML"}};
}

// ---- engine-level twin semantics --------------------------------------------

TEST(EngineSpeculation, FirstCompletionCommitsAndCancelRevokesZombie) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sim::Engine engine(plat, part);
  const auto total = static_cast<model::BlockCount>(part.c_blocks());

  const auto plan = sim::make_double_buffered_chunk({0, 2, 0, 2}, part.t());
  engine.execute(sim::Decision::send_chunk(0, plan));
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);
  EXPECT_TRUE(engine.rect_assigned(plan.rect));

  // The duplicate claims NO new coverage and the pair is twinned, with
  // the primary keeping ownership.
  engine.execute(sim::Decision::send_chunk_speculative(1, plan));
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);
  EXPECT_EQ(engine.progress(0).twin, 1);
  EXPECT_EQ(engine.progress(1).twin, 0);
  EXPECT_FALSE(engine.progress(0).chunk_speculative);
  EXPECT_TRUE(engine.progress(1).chunk_speculative);

  // Feed both copies fully: every delivered batch enables updates, on
  // the duplicate too (it really computes).
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    engine.execute(sim::Decision::send_operands(0));
    engine.execute(sim::Decision::send_operands(1));
  }
  const model::BlockCount chunk_updates = plan.total_updates();
  EXPECT_EQ(engine.updates_total(), 2 * chunk_updates);

  // The duplicate finishes first: its RecvC commits the rect and turns
  // the primary's copy into a zombie ...
  engine.execute(sim::Decision::recv_result(1));
  EXPECT_EQ(engine.progress(1).chunks_returned, 1);
  EXPECT_FALSE(engine.progress(1).has_chunk);
  EXPECT_TRUE(engine.progress(0).chunk_speculative);
  EXPECT_EQ(engine.progress(0).twin, -1);
  EXPECT_TRUE(engine.rect_assigned(plan.rect));

  // ... which the master must never collect ...
  EXPECT_THROW(engine.execute(sim::Decision::recv_result(0)),
               std::logic_error);

  // ... only cancel: non-fatal, coverage intact, the zombie's delivered
  // updates move to the wasted-work account, and the worker is
  // immediately schedulable again.
  engine.execute(sim::Decision::cancel(0));
  EXPECT_TRUE(engine.alive(0));
  EXPECT_FALSE(engine.progress(0).has_chunk);
  EXPECT_EQ(engine.progress(0).chunks_cancelled, 1);
  EXPECT_EQ(engine.updates_total(), chunk_updates);
  EXPECT_EQ(engine.snapshot().wasted_updates, chunk_updates);
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);  // still committed

  const auto next = sim::make_double_buffered_chunk({2, 4, 0, 2}, part.t());
  engine.execute(sim::Decision::send_chunk(0, next));
  EXPECT_EQ(engine.unassigned_blocks(), total - 8);
}

TEST(EngineSpeculation, CancelOfSoleOwnerReturnsRectToPendingSet) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sim::Engine engine(plat, part);
  const auto total = static_cast<model::BlockCount>(part.c_blocks());

  const auto plan = sim::make_double_buffered_chunk({0, 2, 0, 2}, part.t());
  engine.execute(sim::Decision::send_chunk(0, plan));
  engine.execute(sim::Decision::send_operands(0));
  EXPECT_GT(engine.updates_total(), 0);

  // Revoking an untwinned chunk rolls its coverage back -- exactly a
  // failed worker's rollback, except the worker survives.
  engine.execute(sim::Decision::cancel(0));
  EXPECT_TRUE(engine.alive(0));
  EXPECT_EQ(engine.unassigned_blocks(), total);
  EXPECT_FALSE(engine.rect_assigned(plan.rect));
  EXPECT_EQ(engine.updates_total(), 0);
  EXPECT_GT(engine.snapshot().wasted_updates, 0);

  // The same worker may re-adopt the very same blocks.
  engine.execute(sim::Decision::send_chunk(0, plan));
  EXPECT_EQ(engine.unassigned_blocks(), total - 4);
}

TEST(EngineSpeculation, DeathOfEitherTwinHandsOwnershipToSurvivor) {
  const auto plat = stress_platform();
  const auto part = stress_partition();
  const auto plan = sim::make_double_buffered_chunk({0, 2, 0, 2}, part.t());
  const auto total = static_cast<model::BlockCount>(part.c_blocks());

  {
    // Primary dies: the speculative duplicate inherits sole ownership,
    // coverage stays intact, nothing needs re-issuing.
    sim::Engine engine(plat, part);
    engine.execute(sim::Decision::send_chunk(0, plan));
    engine.execute(sim::Decision::send_chunk_speculative(1, plan));
    engine.fail_worker(0);
    EXPECT_EQ(engine.progress(1).twin, -1);
    EXPECT_FALSE(engine.progress(1).chunk_speculative);  // owner now
    EXPECT_TRUE(engine.rect_assigned(plan.rect));
    EXPECT_EQ(engine.unassigned_blocks(), total - 4);
    for (std::size_t s = 0; s < plan.steps.size(); ++s)
      engine.execute(sim::Decision::send_operands(1));
    engine.execute(sim::Decision::recv_result(1));
    EXPECT_EQ(engine.progress(1).chunks_returned, 1);
  }
  {
    // Duplicate dies: the primary simply keeps what it always owned.
    sim::Engine engine(plat, part);
    engine.execute(sim::Decision::send_chunk(0, plan));
    engine.execute(sim::Decision::send_chunk_speculative(1, plan));
    engine.fail_worker(1);
    EXPECT_EQ(engine.progress(0).twin, -1);
    EXPECT_FALSE(engine.progress(0).chunk_speculative);
    EXPECT_TRUE(engine.rect_assigned(plan.rect));
    EXPECT_EQ(engine.unassigned_blocks(), total - 4);
  }
}

// ---- wrapper transparency: simulator ----------------------------------------

class SpSimParity
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(SpSimParity, DriftFreeRunDecidesExactlyLikeInnerPolicy) {
  // Without a straggler the observed drift stays at 1.0 everywhere, so
  // the wrapper must be a pure pass-through: same decisions, same
  // makespan, to the last bit of the model clock.
  const auto& [sp_name, inner_name] = GetParam();
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  auto inner = registry.make(inner_name, plat, part);
  const sim::RunResult plain = sim::simulate(*inner, plat, part);
  auto wrapped = registry.make(sp_name, plat, part);
  const sim::RunResult speculative = sim::simulate(*wrapped, plat, part);

  EXPECT_EQ(speculative.makespan, plain.makespan);
  EXPECT_EQ(speculative.decisions, plain.decisions);
  EXPECT_EQ(speculative.comm_blocks, plain.comm_blocks);
  EXPECT_EQ(speculative.updates, kStressUpdates);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SpSimParity,
                         ::testing::ValuesIn(sp_pairs()),
                         [](const auto& info) {
                           return testing::param_safe(info.param.first);
                         });

// ---- the payoff, deterministically on the simulator -------------------------

TEST(SpeculationPayoff, SimHeavyStragglerBeatsPlainFaultToleranceBy20Pct) {
  // The acceptance scenario: one worker turns 4x slower mid-run and
  // STAYS slow. FT-ODDOML (no proactive redundancy) ends the run
  // waiting on the straggler's tail chunk; SP-ODDOML duplicates it onto
  // an idle survivor and cancels the loser, cutting the makespan by at
  // least a fifth at identical effective updates. Compute-bound on
  // purpose (w >> c): on a port-bound instance workers idle at the
  // master's link and a compute straggler cannot move the makespan.
  // Two chunk rounds only, so the straggler's tail chunk IS a large
  // fraction of the run -- the regime speculation exists for.
  const auto plat = platform::Platform::homogeneous(4, 0.001, 0.02, 30);
  const auto part = matrix::Partition(48, 48, 96, 8);  // r=6, t=6, s=12
  const auto updates = static_cast<model::BlockCount>(6 * 12 * 6);
  sched::Registry& registry = sched::Registry::instance();

  auto probe = registry.make("FT-ODDOML", plat, part);
  const sim::RunResult fault_free = sim::simulate(*probe, plat, part);
  ASSERT_EQ(fault_free.updates, updates);

  const platform::SlowdownSchedule straggler = platform::make_heavy_straggler(
      /*worker=*/1, /*at=*/fault_free.makespan * 0.35, /*factor=*/4.0);

  auto plain = registry.make("FT-ODDOML", plat, part);
  const sim::RunResult ft = sim::simulate(
      *plain, sim::InstanceContext::make(plat, part, straggler));
  auto speculative = registry.make("SP-ODDOML", plat, part);
  const sim::RunResult sp = sim::simulate(
      *speculative, sim::InstanceContext::make(plat, part, straggler));

  EXPECT_EQ(ft.updates, updates);
  EXPECT_EQ(sp.updates, updates);
  EXPECT_GT(ft.makespan, fault_free.makespan);
  EXPECT_LE(sp.makespan, 0.80 * ft.makespan)
      << "FT " << ft.makespan << "s vs SP " << sp.makespan << "s";
}

TEST(SpeculationPayoff, RampingStragglerAlsoTriggersSpeculation) {
  // The compounding-ramp scenario family: 2x, then 4x, then 8x. The
  // drift estimate follows the ramps and speculation still wins.
  // Compute-bound and short for the same reason as the heavy-straggler
  // test.
  const auto plat = platform::Platform::homogeneous(4, 0.001, 0.02, 30);
  const auto part = matrix::Partition(48, 48, 96, 8);
  sched::Registry& registry = sched::Registry::instance();

  auto probe = registry.make("FT-ODDOML", plat, part);
  const sim::RunResult fault_free = sim::simulate(*probe, plat, part);

  const platform::SlowdownSchedule ramp = platform::make_ramping_straggler(
      /*worker=*/2, /*at=*/fault_free.makespan * 0.30,
      /*period=*/fault_free.makespan * 0.15, /*step_factor=*/2.0,
      /*steps=*/3);

  auto plain = registry.make("FT-ODDOML", plat, part);
  const sim::RunResult ft =
      sim::simulate(*plain, sim::InstanceContext::make(plat, part, ramp));
  auto speculative = registry.make("SP-ODDOML", plat, part);
  const sim::RunResult sp = sim::simulate(
      *speculative, sim::InstanceContext::make(plat, part, ramp));

  EXPECT_EQ(sp.updates, ft.updates);
  EXPECT_LT(sp.makespan, ft.makespan);
}

TEST(SpeculationPayoff, SpOverFtSurvivesDeathAndStragglerTogether) {
  // The full unreliable platform: one worker dies for good AND another
  // turns 4x slower. SP-FT-ODDOML recovers the lost chunk through the
  // FT layer and still speculates on the straggler.
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  auto probe = registry.make("SP-FT-ODDOML", plat, part);
  const sim::RunResult fault_free = sim::simulate(*probe, plat, part);
  ASSERT_EQ(fault_free.updates, kStressUpdates);

  platform::FaultSchedule faults;
  faults.add(/*worker=*/3, fault_free.makespan * 0.30);
  const platform::SlowdownSchedule straggler = platform::make_heavy_straggler(
      /*worker=*/1, /*at=*/fault_free.makespan * 0.40, /*factor=*/4.0);

  auto scheduler = registry.make("SP-FT-ODDOML", plat, part);
  const sim::RunResult result = sim::simulate(
      *scheduler, sim::InstanceContext::make(plat, part, straggler, faults));
  EXPECT_EQ(result.workers_failed, 1);
  EXPECT_EQ(result.updates, kStressUpdates);
}

// ---- wrapper transparency: online runtime -----------------------------------

class SpOnlineParity
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(SpOnlineParity, DriftFreeRunIsBitForBitTheInnerPolicysProduct) {
  const auto& [sp_name, inner_name] = GetParam();
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  const auto a = random_matrix(part.n_a(), part.n_ab(), 61);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 62);
  const auto c0 = random_matrix(part.n_a(), part.n_b(), 63);

  matrix::Matrix c_plain = c0;
  {
    auto scheduler = registry.make(inner_name, plat, part);
    const runtime::ExecutorReport report =
        runtime::execute_online(*scheduler, plat, part, a, b, c_plain, {});
    ASSERT_TRUE(report.verified);
  }

  matrix::Matrix c_speculative = c0;
  auto scheduler = registry.make(sp_name, plat, part);
  const runtime::ExecutorReport report = runtime::execute_online(
      *scheduler, plat, part, a, b, c_speculative, {});
  EXPECT_TRUE(report.verified);
  // Telemetry stays self-consistent. (Zero duplicates is NOT asserted
  // here: wall-clock jitter may legitimately trip the drift gate, and a
  // spurious race must still resolve to the identical product -- that
  // is the invariant. Deterministic pass-through is the sim test's job.)
  EXPECT_LE(report.speculation.duplicates_won,
            report.speculation.duplicates_issued);
  EXPECT_LE(report.speculation.duplicates_cancelled,
            report.speculation.duplicates_issued);
  EXPECT_EQ(report.result.updates, kStressUpdates);
  // One k per step, ascending: any assignment computes the identical
  // per-element accumulation, so not even the last ulp may differ.
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_speculative, c_plain), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SpOnlineParity,
                         ::testing::ValuesIn(sp_pairs()),
                         [](const auto& info) {
                           return testing::param_safe(info.param.first);
                         });

// ---- live straggler: deterministic wall-clock trigger -----------------------

/// Fault-hook straggler: every worker pays a small floor delay per step
/// (pacing the run into wall-clock territory where the master's EWMA
/// can see), and ONE worker degrades hard after its first few steps --
/// a machine progressively starved under the run. Keyed to each
/// worker's own message stream, not the wall clock, so the trigger
/// survives scheduler and sanitizer timing.
struct StragglerPlan {
  int straggler = 0;
  int fast_steps = 5;  // its leading steps stay nominal (EWMA baseline)
  std::chrono::milliseconds floor{5};
  std::chrono::milliseconds stall{60};
  std::array<std::atomic<int>, 8> steps{};
};

runtime::ExecutorOptions straggler_options(
    const std::shared_ptr<StragglerPlan>& plan) {
  runtime::ExecutorOptions options;
  options.fault_hook = [plan](int worker, std::size_t) {
    const int seen =
        1 + plan->steps[static_cast<std::size_t>(worker)].fetch_add(1);
    if (worker == plan->straggler && seen > plan->fast_steps)
      std::this_thread::sleep_for(plan->stall);
    else
      std::this_thread::sleep_for(plan->floor);
  };
  return options;
}

/// The live-straggler instance: enough same-size chunks that the
/// straggler returns a slow chunk (folding the drift into the master's
/// calibration) and then sits on another while the survivors go idle.
struct StragglerInstance {
  platform::Platform plat = platform::Platform::homogeneous(4, 0.004,
                                                            0.002, 30);
  matrix::Partition part = matrix::Partition(96, 48, 120, 8);
  model::BlockCount updates = 12 * 15 * 6;
  matrix::Matrix a = random_matrix(96, 48, 71);
  matrix::Matrix b = random_matrix(48, 120, 72);
  matrix::Matrix c0 = random_matrix(96, 120, 73);

  /// Speculation-free reference product (no hooks, fault-free).
  matrix::Matrix reference() const {
    matrix::Matrix c = c0;
    auto scheduler =
        sched::Registry::instance().make("ODDOML", plat, part);
    const runtime::ExecutorReport report =
        runtime::execute_online(*scheduler, plat, part, a, b, c, {});
    EXPECT_TRUE(report.verified);
    return c;
  }
};

TEST(SpOnlineStraggler, ThreadRunDuplicatesCancelsAndStaysBitForBit) {
  const StragglerInstance instance;
  const matrix::Matrix c_reference = instance.reference();

  auto plan = std::make_shared<StragglerPlan>();
  matrix::Matrix c = instance.c0;
  auto scheduler = sched::Registry::instance().make(
      "SP-ODDOML", instance.plat, instance.part);
  const runtime::ExecutorReport report =
      runtime::execute_online(*scheduler, instance.plat, instance.part,
                              instance.a, instance.b, c,
                              straggler_options(plan));

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, 0);  // cancellation is non-fatal
  EXPECT_EQ(report.result.updates, instance.updates);
  // The straggler really triggered a race, and someone lost it.
  EXPECT_GE(report.speculation.duplicates_issued, 1u);
  EXPECT_GE(report.speculation.duplicates_cancelled, 1u);
  EXPECT_LE(report.speculation.duplicates_won,
            report.speculation.duplicates_issued);
  // The duplicate ran the IDENTICAL plan: bit-for-bit product.
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c, c_reference), 0.0);
  // Allocation-clean cancellation: every payload the revoked copies
  // held went back to the pool (leaks would break this balance), and
  // recycling kept working through the cancellations.
  EXPECT_EQ(report.buffer_pool.allocations + report.buffer_pool.reuses,
            report.buffer_pool.acquires);
  EXPECT_GT(report.buffer_pool.reuses, 0u);
  // Everyone survived to contribute, the straggler included.
  for (std::size_t w = 0; w < report.updates_per_worker.size(); ++w)
    EXPECT_GT(report.updates_per_worker[w], 0u) << "worker " << w;
}

TEST(SpOnlineStraggler, CancelledStragglerCostsLessWallClockThanWaiting) {
  // The wall-clock payoff of the worker-side cancel lookahead: under
  // plain FT-ODDOML the run ends only after the straggler grinds
  // through every remaining stalled step; under SP-ODDOML the first
  // completion commits and the CancelMessage preempts the loser's
  // queued dead work. The stalls dwarf scheduler and sanitizer noise.
  const StragglerInstance instance;

  auto ft_plan = std::make_shared<StragglerPlan>();
  matrix::Matrix c_ft = instance.c0;
  auto ft_scheduler = sched::Registry::instance().make(
      "FT-ODDOML", instance.plat, instance.part);
  const runtime::ExecutorReport ft =
      runtime::execute_online(*ft_scheduler, instance.plat, instance.part,
                              instance.a, instance.b, c_ft,
                              straggler_options(ft_plan));
  ASSERT_TRUE(ft.verified);

  auto sp_plan = std::make_shared<StragglerPlan>();
  matrix::Matrix c_sp = instance.c0;
  auto sp_scheduler = sched::Registry::instance().make(
      "SP-ODDOML", instance.plat, instance.part);
  const runtime::ExecutorReport sp =
      runtime::execute_online(*sp_scheduler, instance.plat, instance.part,
                              instance.a, instance.b, c_sp,
                              straggler_options(sp_plan));
  ASSERT_TRUE(sp.verified);
  ASSERT_GE(sp.speculation.duplicates_issued, 1u);

  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_sp, c_ft), 0.0);
  EXPECT_LT(sp.wall_seconds, ft.wall_seconds)
      << "FT " << ft.wall_seconds << "s vs SP " << sp.wall_seconds << "s";
}

TEST(SpOnlineStraggler, ProcessRunCancelsAcrossSerializedFrames) {
  HMXP_SKIP_UNDER_TSAN();
  // The same live race over forked workers: CancelMessages are real
  // serialized frames on the socketpair, the fault hook (and its step
  // counters) runs inside each child.
  const StragglerInstance instance;
  const matrix::Matrix c_reference = instance.reference();

  auto plan = std::make_shared<StragglerPlan>();
  matrix::Matrix c = instance.c0;
  auto scheduler = sched::Registry::instance().make(
      "SP-ODDOML", instance.plat, instance.part);
  runtime::ExecutorOptions options = straggler_options(plan);
  options.transport = runtime::TransportKind::kProcess;
  const runtime::ExecutorReport report =
      runtime::execute_online(*scheduler, instance.plat, instance.part,
                              instance.a, instance.b, c, options);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, 0);
  EXPECT_GE(report.speculation.duplicates_issued, 1u);
  EXPECT_GE(report.speculation.duplicates_cancelled, 1u);
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c, c_reference), 0.0);
}

TEST(SpOnlineStraggler, ShmRunCancelsWithoutLeakingArenaSlots) {
  HMXP_SKIP_UNDER_TSAN();
  // Over the zero-copy arena the revoked copies held REAL shared-memory
  // slots (resident C, queued operands): the cancel path must hand
  // every one back or long speculative runs starve the arena.
  const StragglerInstance instance;
  const matrix::Matrix c_reference = instance.reference();

  auto plan = std::make_shared<StragglerPlan>();
  matrix::Matrix c = instance.c0;
  auto scheduler = sched::Registry::instance().make(
      "SP-ODDOML", instance.plat, instance.part);
  runtime::ExecutorOptions options = straggler_options(plan);
  options.transport = runtime::TransportKind::kShm;
  const runtime::ExecutorReport report =
      runtime::execute_online(*scheduler, instance.plat, instance.part,
                              instance.a, instance.b, c, options);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, 0);
  EXPECT_GE(report.speculation.duplicates_issued, 1u);
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c, c_reference), 0.0);
  EXPECT_GT(report.transport_stats.arena_peak_slots, 0u);
  EXPECT_EQ(report.transport_stats.arena_leaked_slots, 0u);
}

// ---- SP over FT: speculation composed with real failure ---------------------

class SpFtComposition : public ::testing::TestWithParam<std::string> {};

TEST_P(SpFtComposition, RecoversFromExceptionKillBitForBit) {
  // The FT suite's deterministic kill (a worker's 2nd operand step
  // throws) under the speculation wrapper: the FT layer re-assigns the
  // lost chunk, the SP layer stays consistent, and the recovered C
  // matches the fault-free product bit for bit.
  const std::string name = GetParam();
  const auto plat = stress_platform();
  const auto part = stress_partition();
  sched::Registry& registry = sched::Registry::instance();

  const auto a = random_matrix(part.n_a(), part.n_ab(), 81);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 82);
  const auto c0 = random_matrix(part.n_a(), part.n_b(), 83);

  matrix::Matrix c_reference = c0;
  {
    auto scheduler = registry.make(name, plat, part);
    const runtime::ExecutorReport report = runtime::execute_online(
        *scheduler, plat, part, a, b, c_reference, {});
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.workers_failed, 0);
  }

  struct KillPlan {
    std::array<std::atomic<int>, 4> steps{};
    std::atomic<int> slots{1};
  };
  auto plan = std::make_shared<KillPlan>();
  runtime::ExecutorOptions options;
  options.tolerate_faults = true;
  options.fault_hook = [plan](int worker, std::size_t) {
    const int seen =
        1 + plan->steps[static_cast<std::size_t>(worker)].fetch_add(1);
    if (seen == 2 && plan->slots.fetch_sub(1) > 0)
      throw std::runtime_error("injected kill: worker " +
                               std::to_string(worker));
  };
  matrix::Matrix c_faulty = c0;
  auto scheduler = registry.make(name, plat, part);
  const runtime::ExecutorReport report = runtime::execute_online(
      *scheduler, plat, part, a, b, c_faulty, options);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, 1);
  EXPECT_EQ(report.result.updates, kStressUpdates);
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_faulty, c_reference), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SpFtComposition,
                         ::testing::Values("SP-FT-ODDOML", "SP-FT-OMMOML"),
                         [](const auto& info) {
                           return testing::param_safe(info.param);
                         });

TEST(SpFtComposition, SurvivesRealSigkillOnShmWithoutLeakingSlots) {
  HMXP_SKIP_UNDER_TSAN();
  // Address-space-level failure under the composed wrapper: a forked
  // worker takes a REAL SIGKILL mid-chunk on the shm transport. The FT
  // layer re-assigns its work, the dead child's arena slots are swept,
  // and the recovered product matches bit for bit.
  const matrix::Partition part(40, 40, 40, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 91);
  const auto b = random_matrix(40, 40, 92);
  const auto c0 = random_matrix(40, 40, 93);
  sched::Registry& registry = sched::Registry::instance();

  matrix::Matrix c_clean = c0;
  {
    auto scheduler = registry.make("SP-FT-ODDOML", plat, part);
    runtime::ExecutorOptions options;
    options.transport = runtime::TransportKind::kShm;
    const runtime::ExecutorReport report = runtime::execute_online(
        *scheduler, plat, part, a, b, c_clean, options);
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.workers_failed, 0);
  }

  matrix::Matrix c_faulty = c0;
  auto scheduler = registry.make("SP-FT-ODDOML", plat, part);
  runtime::ExecutorOptions options;
  options.transport = runtime::TransportKind::kShm;
  options.tolerate_faults = true;
  // Runs inside the forked child: a REAL SIGKILL, not an exception.
  options.fault_hook = [](int worker, std::size_t step) {
    if (worker == 1 && step == 1) std::raise(SIGKILL);
  };
  const runtime::ExecutorReport report = runtime::execute_online(
      *scheduler, plat, part, a, b, c_faulty, options);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.workers_failed, 1);
  EXPECT_EQ(report.transport_stats.arena_leaked_slots, 0u);
  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_faulty, c_clean), 0.0);
}

}  // namespace
}  // namespace hmxp
