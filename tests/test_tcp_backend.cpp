// Tests for the TCP transport and the wire-hardening around it: the
// versioned hello handshake (magic + protocol version, errors naming
// both versions), frame-length validation (a corrupt 8-byte prefix must
// fail the connection cleanly, never size an allocation), the shared
// socket I/O helpers' death classification (mid-frame EOF is a distinct
// peer-died error), the zero-RLE wire codec, loopback-TCP live and
// replay parity with the thread transport for every registered
// scheduler, and the disconnect/reconnect lifecycle: a worker severed
// mid-run redials, is re-admitted, and the run completes bit-for-bit
// equal to the fault-free product.
//
// Like the process suite, everything that forks skips under TSan.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/run.hpp"
#include "matrix/matrix.hpp"
#include "runtime/executor.hpp"
#include "runtime/serde.hpp"
#include "runtime/socket_util.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/wire_compress.hpp"
#include "sched/registry.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#endif

#if defined(HMXP_TSAN)
#define HMXP_SKIP_UNDER_TSAN()                                   \
  GTEST_SKIP() << "tcp transport forks worker processes, which " \
                  "ThreadSanitizer does not support"
#else
#define HMXP_SKIP_UNDER_TSAN() \
  do {                         \
  } while (false)
#endif

namespace hmxp::runtime {
namespace {

matrix::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return matrix::Matrix::random(rows, cols, rng);
}

// ---- versioned handshake ----------------------------------------------------

TEST(TcpSerde, HelloFrameRoundTripsIdentityAndResources) {
  serde::HelloFrame hello;
  hello.token = 0xfeedfacecafe01ull;
  hello.cores = 48;
  hello.memory_mb = 192 * 1024;
  hello.kernel_tier = 3;
  hello.kernel_variant = 2;
  hello.mc = 256;
  hello.kc = 512;
  hello.nc = 4096;

  serde::ByteBuffer wire;
  serde::encode_hello(hello, wire);
  const std::uint64_t length = serde::decode_length(wire.data());
  const serde::HelloFrame decoded = serde::decode_hello(
      wire.data() + serde::kLengthBytes, static_cast<std::size_t>(length));
  EXPECT_EQ(decoded, hello);
  EXPECT_EQ(decoded.magic, serde::kProtocolMagic);
  EXPECT_EQ(decoded.version, serde::kProtocolVersion);
  EXPECT_TRUE(decoded.same_kernel_config(hello));

  // Identity and resources legitimately differ across hosts; only the
  // kernel configuration must match.
  serde::HelloFrame other_host = hello;
  other_host.token = 7;
  other_host.cores = 2;
  other_host.memory_mb = 900;
  EXPECT_TRUE(other_host.same_kernel_config(hello));
  other_host.mc = 128;
  EXPECT_FALSE(other_host.same_kernel_config(hello));
}

TEST(TcpSerde, VersionMismatchNamesBothVersions) {
  serde::HelloFrame hello;
  hello.version = serde::kProtocolVersion + 7;
  serde::ByteBuffer wire;
  serde::encode_hello(hello, wire);
  const std::uint64_t length = serde::decode_length(wire.data());
  try {
    serde::decode_hello(wire.data() + serde::kLengthBytes,
                        static_cast<std::size_t>(length));
    FAIL() << "expected a protocol version mismatch";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    // Both versions by name: the peer's and this build's.
    EXPECT_NE(what.find(std::to_string(serde::kProtocolVersion + 7)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("v" + std::to_string(serde::kProtocolVersion)),
              std::string::npos)
        << what;
  }
}

TEST(TcpSerde, BadMagicIsNotAWorker) {
  serde::HelloFrame hello;
  hello.magic = 0x47455420;  // "GET " -- some stray HTTP client
  serde::ByteBuffer wire;
  serde::encode_hello(hello, wire);
  const std::uint64_t length = serde::decode_length(wire.data());
  try {
    serde::decode_hello(wire.data() + serde::kLengthBytes,
                        static_cast<std::size_t>(length));
    FAIL() << "expected a magic mismatch";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("magic"), std::string::npos)
        << error.what();
  }
}

// ---- frame-length validation ------------------------------------------------

TEST(TcpSerde, CheckedFrameLengthRefusesCorruptPrefixes) {
  const std::uint64_t limit = serde::max_frame_bytes_for(1000);
  EXPECT_LT(limit, serde::kMaxFrameBytes);

  std::uint8_t prefix[serde::kLengthBytes];
  const std::uint64_t huge = 1ull << 50;  // a "4 PiB frame" from line noise
  std::memcpy(prefix, &huge, sizeof huge);
  try {
    serde::checked_frame_length(prefix, limit);
    FAIL() << "expected the oversized length to be refused";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("refusing to allocate"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(huge)), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(limit)), std::string::npos) << what;
  }

  const std::uint64_t zero = 0;
  std::memcpy(prefix, &zero, sizeof zero);
  EXPECT_THROW(serde::checked_frame_length(prefix, limit),
               std::runtime_error);

  const std::uint64_t fine = limit;
  std::memcpy(prefix, &fine, sizeof fine);
  EXPECT_EQ(serde::checked_frame_length(prefix, limit), limit);
}

// ---- corrupt wire bytes through the shared socket helpers -------------------

struct SocketPair {
  int read_end = -1;
  int write_end = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    read_end = fds[0];
    write_end = fds[1];
  }
  ~SocketPair() {
    if (read_end >= 0) ::close(read_end);
    if (write_end >= 0) ::close(write_end);
  }
  void write_bytes(const void* data, std::size_t size) const {
    ASSERT_EQ(::send(write_end, data, size, 0),
              static_cast<ssize_t>(size));
  }
  void close_write() {
    ::close(write_end);
    write_end = -1;
  }
};

constexpr std::uint64_t kTestFrameLimit = 1 << 16;

TEST(SocketUtil, CleanEofAtFrameBoundaryIsNotAnError) {
  SocketPair pair;
  pair.close_write();
  std::vector<std::uint8_t> body;
  EXPECT_FALSE(read_frame(pair.read_end, body, kTestFrameLimit));
}

TEST(SocketUtil, TruncatedPrefixIsPeerDeath) {
  SocketPair pair;
  const std::uint8_t stub[3] = {1, 2, 3};  // 3 of the 8 prefix bytes
  pair.write_bytes(stub, sizeof stub);
  pair.close_write();
  std::vector<std::uint8_t> body;
  EXPECT_THROW(read_frame(pair.read_end, body, kTestFrameLimit),
               PeerDisconnected);
}

TEST(SocketUtil, MidFrameEofIsPeerDeath) {
  SocketPair pair;
  const std::uint64_t length = 64;
  pair.write_bytes(&length, sizeof length);
  const std::uint8_t partial[16] = {};
  pair.write_bytes(partial, sizeof partial);  // 16 of the declared 64
  pair.close_write();
  std::vector<std::uint8_t> body;
  EXPECT_THROW(read_frame(pair.read_end, body, kTestFrameLimit),
               PeerDisconnected);
}

TEST(SocketUtil, OversizedLengthFailsWithoutAllocating) {
  SocketPair pair;
  const std::uint64_t hostile = 1ull << 60;  // an exabyte "frame"
  pair.write_bytes(&hostile, sizeof hostile);
  pair.close_write();
  std::vector<std::uint8_t> body;
  try {
    read_frame(pair.read_end, body, kTestFrameLimit);
    FAIL() << "expected the hostile prefix to be refused";
  } catch (const PeerDisconnected&) {
    FAIL() << "corruption must be distinct from peer death";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("refusing to allocate"),
              std::string::npos)
        << error.what();
  }
  // The refusal happened before any buffer was sized to the prefix;
  // under ASan an attempted exabyte resize would abort the test.
  EXPECT_LT(body.capacity(), static_cast<std::size_t>(kTestFrameLimit) + 1);
}

TEST(SocketUtil, GarbageBodyFailsInTheDecoderNotTheTransport) {
  SocketPair pair;
  std::vector<std::uint8_t> garbage(128, 0xA5);
  garbage[0] = 1;  // FrameType::kChunk, then noise
  const std::uint64_t length = garbage.size();
  pair.write_bytes(&length, sizeof length);
  pair.write_bytes(garbage.data(), garbage.size());
  pair.close_write();

  std::vector<std::uint8_t> body;
  ASSERT_TRUE(read_frame(pair.read_end, body, kTestFrameLimit));
  BufferPool pool;
  EXPECT_THROW(serde::decode_chunk(body.data(), body.size(), pool),
               std::runtime_error);
}

// ---- zero-RLE wire codec ----------------------------------------------------

TEST(WireCompress, RoundTripsAndShrinksZeroRuns) {
  std::vector<std::uint8_t> raw(4096, 0);
  for (std::size_t i = 0; i < raw.size(); i += 97) raw[i] = 0xC3;

  std::vector<std::uint8_t> packed;
  wire::compress(raw.data(), raw.size(), packed);
  EXPECT_LT(packed.size(), raw.size() / 4);

  std::vector<std::uint8_t> unpacked(raw.size());
  wire::decompress(packed.data(), packed.size(), unpacked.data(),
                   unpacked.size());
  EXPECT_EQ(unpacked, raw);

  // Incompressible input round-trips too (the codec may expand it; the
  // SENDER keeps such frames raw, the codec just has to be correct).
  std::vector<std::uint8_t> noise;
  for (std::size_t i = 0; i < 257; ++i)
    noise.push_back(static_cast<std::uint8_t>(i * 131 + 7));
  packed.clear();
  wire::compress(noise.data(), noise.size(), packed);
  std::vector<std::uint8_t> back(noise.size());
  wire::decompress(packed.data(), packed.size(), back.data(), back.size());
  EXPECT_EQ(back, noise);
}

TEST(WireCompress, CorruptStreamsThrowInsteadOfOverflowing) {
  // A zero-run that overflows the declared raw size.
  const std::uint8_t overflow[] = {0x00, 0xFF};  // 256 zeros
  std::uint8_t small[8];
  EXPECT_THROW(wire::decompress(overflow, sizeof overflow, small,
                                sizeof small),
               std::runtime_error);
  // A run marker with no count byte.
  const std::uint8_t truncated[] = {0x42, 0x00};
  EXPECT_THROW(wire::decompress(truncated, sizeof truncated, small,
                                sizeof small),
               std::runtime_error);
  // A stream that ends before filling the declared raw size.
  const std::uint8_t short_stream[] = {0x01, 0x02};
  EXPECT_THROW(wire::decompress(short_stream, sizeof short_stream, small,
                                sizeof small),
               std::runtime_error);
}

TEST(WireCompress, CompressedFramesRejectBombsAndNesting) {
  // A legitimate wrapped frame round-trips.
  std::vector<std::uint8_t> body(2048, 0);
  body[0] = 3;  // FrameType::kResult, rest zeros: highly compressible
  serde::ByteBuffer wrapped;
  serde::encode_compressed(body.data(), body.size(), wrapped);
  EXPECT_LT(wrapped.size(), body.size());
  const std::uint64_t length = serde::decode_length(wrapped.data());
  serde::ByteBuffer raw;
  serde::decode_compressed(wrapped.data() + serde::kLengthBytes,
                           static_cast<std::size_t>(length), kTestFrameLimit,
                           raw);
  ASSERT_EQ(raw.size(), body.size());
  EXPECT_EQ(0, std::memcmp(raw.data(), body.data(), body.size()));

  // A decompression bomb: tiny stream declaring a huge raw size.
  serde::ByteBuffer bomb;
  serde::encode_compressed(body.data(), body.size(), bomb);
  const std::uint64_t fake_raw = 1ull << 55;
  std::memcpy(bomb.data() + serde::kLengthBytes + 1, &fake_raw,
              sizeof fake_raw);
  const std::uint64_t bomb_length = serde::decode_length(bomb.data());
  try {
    serde::decode_compressed(bomb.data() + serde::kLengthBytes,
                             static_cast<std::size_t>(bomb_length),
                             kTestFrameLimit, raw);
    FAIL() << "expected the declared raw size to be refused";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("refusing to inflate"),
              std::string::npos)
        << error.what();
  }

  // Nesting: a kCompressed frame whose payload is itself kCompressed
  // must be rejected, not recursed into.
  serde::ByteBuffer inner;
  serde::encode_compressed(body.data(), body.size(), inner);
  serde::ByteBuffer outer;
  serde::encode_compressed(inner.data() + serde::kLengthBytes,
                           inner.size() - serde::kLengthBytes, outer);
  const std::uint64_t outer_length = serde::decode_length(outer.data());
  EXPECT_THROW(
      serde::decode_compressed(outer.data() + serde::kLengthBytes,
                               static_cast<std::size_t>(outer_length),
                               kTestFrameLimit, raw),
      std::runtime_error);
}

// ---- loopback-TCP parity ----------------------------------------------------

platform::Platform hetero_platform() {
  std::vector<platform::WorkerSpec> specs = {
      {0.010, 0.001, 30, "alpha"},
      {0.013, 0.002, 60, "beta"},
      {0.017, 0.0015, 140, "gamma"},
  };
  return platform::Platform("parity", specs);
}

struct TransportRun {
  ExecutorReport report;
  std::vector<sim::Decision> decisions;
  matrix::Matrix c;
};

TransportRun run_transport(sim::Scheduler& scheduler, TransportKind transport,
                           const platform::Platform& plat,
                           const matrix::Partition& part) {
  const auto a = random_matrix(part.n_a(), part.n_ab(), 11);
  const auto b = random_matrix(part.n_ab(), part.n_b(), 12);
  TransportRun run{.report = {}, .decisions = {},
                   .c = random_matrix(part.n_a(), part.n_b(), 13)};
  ExecutorOptions options;
  options.transport = transport;
  run.report = execute_online(scheduler, plat, part, a, b, run.c, options,
                              &run.decisions);
  return run;
}

TransportRun run_live(const std::string& algorithm, TransportKind transport,
                      const platform::Platform& plat,
                      const matrix::Partition& part) {
  auto scheduler = sched::Registry::instance().make(algorithm, plat, part);
  return run_transport(*scheduler, transport, plat, part);
}

TEST(TcpBackend, EveryRegisteredSchedulerLiveParityWithThreadTransport) {
  HMXP_SKIP_UNDER_TSAN();
  // Same order-invariant live guarantee the process suite pins: on a
  // homogeneous platform every registered scheduler completes over
  // loopback TCP with a verified product, the same decision count as
  // the thread transport (drift-reactive SP-* excepted) and
  // bit-for-bit the same C whatever the interleaving.
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(52, 70, 100, 8);  // q=8: r=7, t=9, s=13

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    const TransportRun threaded =
        run_live(algorithm, TransportKind::kThread, plat, part);
    const TransportRun dialed =
        run_live(algorithm, TransportKind::kTcp, plat, part);

    EXPECT_TRUE(threaded.report.verified);
    EXPECT_TRUE(dialed.report.verified);
    EXPECT_EQ(dialed.report.transport, "tcp");
    EXPECT_EQ(dialed.report.workers_failed, 0);
    EXPECT_EQ(dialed.report.workers_rejoined, 0);

    if (algorithm.rfind("SP-", 0) != 0) {
      EXPECT_EQ(dialed.decisions.size(), threaded.decisions.size());
      EXPECT_EQ(dialed.report.updates_performed,
                threaded.report.updates_performed);
      EXPECT_EQ(dialed.report.chunks_processed,
                threaded.report.chunks_processed);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(dialed.c, threaded.c), 0.0);
  }
}

TEST(TcpBackend, EveryRegisteredSchedulerReplaysIdenticallyOverTcp) {
  HMXP_SKIP_UNDER_TSAN();
  // The deterministic half: each scheduler's simulated schedule replays
  // over loopback TCP with the exact simulated decision sequence, the
  // bit-identical model projection, and bit-for-bit the thread
  // transport's C.
  const platform::Platform plat = hetero_platform();
  const matrix::Partition part(52, 70, 100, 8);

  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    auto probe = sched::Registry::instance().make(algorithm, plat, part);
    std::vector<sim::Decision> simulated;
    const sim::RunResult sim_result =
        sim::simulate(*probe, plat, part, false, &simulated);

    TransportRun runs[2];
    const TransportKind kinds[2] = {TransportKind::kThread,
                                    TransportKind::kTcp};
    for (int which = 0; which < 2; ++which) {
      sim::ReplayScheduler replay(algorithm, simulated);
      runs[which] = run_transport(replay, kinds[which], plat, part);
      const TransportRun& run = runs[which];
      EXPECT_TRUE(run.report.verified);
      ASSERT_EQ(run.decisions.size(), simulated.size());
      for (std::size_t i = 0; i < simulated.size(); ++i) {
        EXPECT_EQ(run.decisions[i].comm, simulated[i].comm)
            << transport_kind_name(kinds[which]) << " decision " << i;
        EXPECT_EQ(run.decisions[i].worker, simulated[i].worker)
            << transport_kind_name(kinds[which]) << " decision " << i;
      }
      EXPECT_DOUBLE_EQ(run.report.result.makespan, sim_result.makespan);
      EXPECT_EQ(run.report.result.comm_blocks, sim_result.comm_blocks);
    }
    EXPECT_EQ(matrix::Matrix::max_abs_diff(runs[1].c, runs[0].c), 0.0);
  }
}

// ---- disconnect / reconnect lifecycle ---------------------------------------

TEST(TcpBackend, DisconnectedWorkerReconnectsAndRecoversBitForBit) {
  HMXP_SKIP_UNDER_TSAN();
  // Sever worker 1's connection mid-run (no goodbye, no notice -- the
  // wire just dies). The master must recover the orphaned chunk like
  // any worker death, then RE-ADMIT the redialing worker; the run
  // completes with the reconnect recorded and C bit-for-bit equal to
  // the fault-free product.
  const matrix::Partition part(64, 64, 64, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(64, 64, 21);
  const auto b = random_matrix(64, 64, 22);
  const matrix::Matrix c_initial = random_matrix(64, 64, 23);

  matrix::Matrix c_clean = c_initial;
  {
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kTcp;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_clean, options);
    EXPECT_TRUE(report.verified);
    EXPECT_EQ(report.workers_failed, 0);
  }

  // Whether the redialing worker is re-admitted BEFORE the survivors
  // finish the run is a wall-clock race the master intentionally does
  // not wait on (a run never stalls for a worker that may never come
  // back), so on a loaded host an attempt can complete with the
  // reconnect still in flight. Correctness (bit-for-bit C, failure
  // recorded) must hold on EVERY attempt; observing the re-admission
  // itself gets a bounded retry.
  bool saw_rejoin = false;
  for (int attempt = 0; attempt < 5 && !saw_rejoin; ++attempt) {
    matrix::Matrix c_faulty = c_initial;
    auto scheduler =
        sched::Registry::instance().make("FT-ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kTcp;
    options.tolerate_faults = true;
    // Runs inside the forked child: the throw unwinds worker_main, the
    // reconnect loop drops the socket and redials. One-shot per child
    // process (the static survives the in-process reconnect loop), so
    // the re-admitted worker computes its next chunk instead of
    // severing the fresh connection all over again.
    options.fault_hook = [](int worker, std::size_t step) {
      static bool fired = false;
      if (!fired && worker == 1 && step == 1) {
        fired = true;
        throw TcpDisconnectFault("injected link failure");
      }
    };
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_faulty, options);
    EXPECT_TRUE(report.verified);
    EXPECT_GE(report.workers_failed, 1);
    EXPECT_EQ(matrix::Matrix::max_abs_diff(c_faulty, c_clean), 0.0);
    saw_rejoin = report.workers_rejoined >= 1;
  }
  EXPECT_TRUE(saw_rejoin)
      << "disconnected worker was never re-admitted in 5 attempts";
}

// ---- wire compression -------------------------------------------------------

TEST(TcpBackend, WireCompressionShrinksTrafficAndPreservesBits) {
  HMXP_SKIP_UNDER_TSAN();
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const auto a = random_matrix(40, 40, 31);
  const auto b = random_matrix(40, 56, 32);
  // An all-zero initial C: outbound chunk frames are long zero runs,
  // the codec's best case (the regime where wire compression pays).
  const matrix::Matrix c_initial(40, 56, 0.0);

  matrix::Matrix c_raw = c_initial;
  TransportStats raw_stats;
  {
    auto scheduler = sched::Registry::instance().make("ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kTcp;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_raw, options);
    EXPECT_TRUE(report.verified);
    raw_stats = report.transport_stats;
    EXPECT_EQ(raw_stats.frames_compressed, 0u);
  }

  matrix::Matrix c_packed = c_initial;
  {
    auto scheduler = sched::Registry::instance().make("ODDOML", plat, part);
    ExecutorOptions options;
    options.transport = TransportKind::kTcp;
    options.wire_compression = true;
    const ExecutorReport report =
        execute_online(*scheduler, plat, part, a, b, c_packed, options);
    EXPECT_TRUE(report.verified);
    const TransportStats& stats = report.transport_stats;
    EXPECT_GT(stats.frames_compressed, 0u);
    EXPECT_GT(stats.bytes_saved_by_compression, 0u);
    EXPECT_LT(stats.bytes_sent, raw_stats.bytes_sent);
  }

  EXPECT_EQ(matrix::Matrix::max_abs_diff(c_packed, c_raw), 0.0);
}

}  // namespace
}  // namespace hmxp::runtime

// ---- the core facade on Backend::kTcp ---------------------------------------

namespace hmxp::core {
namespace {

TEST(TcpBackend, CoreRunsCellsOnTheTcpBackend) {
  HMXP_SKIP_UNDER_TSAN();
  const matrix::Partition part(40, 40, 56, 8);
  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);

  const RunReport simulated = run_algorithm("ORROML", plat, part);
  OnlineOptions online;
  online.backend = Backend::kTcp;
  online.data_seed = 7;
  const RunReport executed =
      run_algorithm_online("ORROML", plat, part, online);

  EXPECT_EQ(executed.backend, Backend::kTcp);
  EXPECT_TRUE(executed.online_verified);
  EXPECT_GT(executed.online_wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(executed.result.makespan, simulated.result.makespan);
  EXPECT_EQ(executed.result.decisions, simulated.result.decisions);
}

TEST(TcpBackend, BackendNamesParseBothWays) {
  EXPECT_STREQ(backend_name(Backend::kTcp), "tcp");
  EXPECT_EQ(parse_backend("tcp"), Backend::kTcp);
  EXPECT_EQ(parse_backend("loopback-tcp"), Backend::kTcp);
  EXPECT_EQ(parse_backend("SOCKET"), Backend::kTcp);
  EXPECT_EQ(parse_backend("bogus"), std::nullopt);
}

}  // namespace
}  // namespace hmxp::core
