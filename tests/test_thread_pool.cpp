// util::ThreadPool semantics: all submitted tasks run, wait_idle blocks
// until completion and rethrows the first task exception, and index-slot
// writes give deterministic results regardless of completion order.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.hpp"

namespace hmxp::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, IndexSlotsMakeResultsDeterministic) {
  std::vector<int> serial(257), threaded(257);
  const auto fill = [](std::vector<int>& out, int threads) {
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < out.size(); ++i)
      pool.submit([&out, i] { out[i] = static_cast<int>(i * i % 97); });
    pool.wait_idle();
  };
  fill(serial, 1);
  fill(threaded, 8);
  EXPECT_EQ(serial, threaded);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("cell exploded"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after the error was consumed.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_thread_count());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 10);
  }
}

TEST(ThreadPool, RejectsInvalidArguments) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace hmxp::util
