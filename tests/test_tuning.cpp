// Tests for the blocking-parameter autotuner: candidate generation,
// the persistent host-keyed tuning cache (round-trip, corruption and
// stale-version fallback), the forced > cache > search > default
// resolution order, and cross-transport parity with a non-default
// tuned blocking installed (every registered scheduler, thread vs
// process vs shm, bit-for-bit).
//
// The TuningSmoke suite deliberately reads the REAL environment
// (HMXP_TUNE / HMXP_TUNE_CACHE): CI runs it as
//   HMXP_TUNE=smoke HMXP_TUNE_CACHE=$TMP/tuning
//       ./test_tuning --gtest_filter='TuningSmoke.*'
// to prove a bounded deterministic search resolves, installs and
// persists a valid blocking end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "matrix/gemm.hpp"
#include "matrix/kernel_dispatch.hpp"
#include "matrix/matrix.hpp"
#include "matrix/tuning.hpp"
#include "platform/platform.hpp"
#include "runtime/executor.hpp"
#include "sched/registry.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HMXP_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define HMXP_TSAN 1
#endif

// fork(2) from a multithreaded parent is unsupported by TSan (the child
// inherits a broken runtime); gate explicitly instead of hiding the
// tests from the build.
#if defined(HMXP_TSAN)
#define HMXP_SKIP_UNDER_TSAN()                                     \
  GTEST_SKIP() << "the forked transports are exercised elsewhere; " \
                  "ThreadSanitizer does not support fork()"
#else
#define HMXP_SKIP_UNDER_TSAN() \
  do {                         \
  } while (false)
#endif

namespace hmxp::matrix {
namespace {

/// Restores every piece of tuning state a test may touch, so tests
/// compose in any order and never leak a pin into the rest of the
/// binary.
struct TuningStateGuard {
  ~TuningStateGuard() {
    force_blocking(std::nullopt);
    set_tune_mode(std::nullopt);
    set_tuning_cache_override(std::nullopt);
    invalidate_resolved_blocking();
  }
};

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "hmxp-" + leaf + "-" +
         std::to_string(::getpid());
}

// ---- basics -----------------------------------------------------------------

TEST(Tuning, BlockingToStringAndValidate) {
  EXPECT_EQ(blocking_to_string(kDefaultBlocking), "120x256x512");
  EXPECT_NO_THROW(validate_blocking(kDefaultBlocking, 4, 8));
  EXPECT_NO_THROW(validate_blocking(kDefaultBlocking, 6, 8));
  EXPECT_NO_THROW(validate_blocking(kDefaultBlocking, 8, 8));
  // MC not a multiple of MR.
  EXPECT_THROW(validate_blocking({121, 256, 512}, 4, 8),
               std::invalid_argument);
  // NC not a multiple of NR.
  EXPECT_THROW(validate_blocking({120, 256, 100}, 4, 8),
               std::invalid_argument);
  // Zero extents.
  EXPECT_THROW(validate_blocking({0, 256, 512}, 4, 8),
               std::invalid_argument);
  EXPECT_THROW(validate_blocking({120, 0, 512}, 4, 8),
               std::invalid_argument);
  EXPECT_THROW(validate_blocking({120, 256, 0}, 4, 8),
               std::invalid_argument);
}

TEST(Tuning, TuneModeNamesParseBothWays) {
  for (const TuneMode mode : {TuneMode::kOff, TuneMode::kAuto,
                              TuneMode::kForce, TuneMode::kSmoke}) {
    const auto parsed = parse_tune_mode(tune_mode_name(mode));
    ASSERT_TRUE(parsed.has_value()) << tune_mode_name(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(parse_tune_mode("on"), TuneMode::kAuto);
  EXPECT_EQ(parse_tune_mode("retune"), TuneMode::kForce);
  EXPECT_EQ(parse_tune_mode("SMOKE"), TuneMode::kSmoke);
  EXPECT_EQ(parse_tune_mode("bogus"), std::nullopt);
}

TEST(Tuning, CandidatesAreValidDeterministicAndIncludeTheBaseline) {
  const CacheHierarchy& caches = detect_cache_hierarchy();
  for (const std::size_t mr : {std::size_t{4}, std::size_t{6},
                               std::size_t{8}}) {
    SCOPED_TRACE(mr);
    const auto full = blocking_candidates(caches, mr, 8, /*smoke=*/false);
    const auto smoke = blocking_candidates(caches, mr, 8, /*smoke=*/true);
    ASSERT_FALSE(full.empty());
    ASSERT_FALSE(smoke.empty());
    EXPECT_LE(smoke.size(), 3u);
    // The historical baseline is always candidate zero: the search can
    // never pick something slower than the hardcoded blocking.
    EXPECT_EQ(full.front(), kDefaultBlocking);
    EXPECT_EQ(smoke.front(), kDefaultBlocking);
    for (const auto& candidate : full)
      EXPECT_NO_THROW(validate_blocking(candidate, mr, 8))
          << blocking_to_string(candidate);
    // Deterministic: same hierarchy in, same candidates out.
    EXPECT_EQ(blocking_candidates(caches, mr, 8, false), full);
    EXPECT_EQ(blocking_candidates(caches, mr, 8, true), smoke);
  }
}

TEST(Tuning, CacheKeyNamesTheVariantAndRegisterTile) {
  const std::string portable = tuning_cache_key(MicroKernelVariant::kPortable);
  EXPECT_NE(portable.find("portable"), std::string::npos);
  EXPECT_NE(portable.find("mr4nr8"), std::string::npos);
  const std::string avx2 = tuning_cache_key(MicroKernelVariant::kAvx2Fma);
  EXPECT_NE(avx2.find("avx2+fma"), std::string::npos);
  EXPECT_NE(avx2.find("mr6nr8"), std::string::npos);
  const std::string avx512 = tuning_cache_key(MicroKernelVariant::kAvx512);
  EXPECT_NE(avx512.find("avx512"), std::string::npos);
  EXPECT_NE(avx512.find("mr8nr8"), std::string::npos);
  // Distinct variants can never collide on one host.
  EXPECT_NE(portable, avx2);
  EXPECT_NE(avx2, avx512);
}

// ---- the persistent cache file ----------------------------------------------

TEST(Tuning, CacheRoundTripsAndPreservesOtherEntries) {
  const std::string path = temp_path("cache-roundtrip");
  const BlockingParams mine{96, 192, 1024};
  const BlockingParams theirs{48, 128, 512};
  ASSERT_TRUE(store_tuned_blocking(path, "other-host|portable|mr4nr8",
                                   theirs));
  ASSERT_TRUE(store_tuned_blocking(path, "this-host|avx512|mr8nr8", mine));

  EXPECT_EQ(load_tuned_blocking(path, "this-host|avx512|mr8nr8"), mine);
  EXPECT_EQ(load_tuned_blocking(path, "other-host|portable|mr4nr8"), theirs);
  EXPECT_EQ(load_tuned_blocking(path, "absent-key"), std::nullopt);

  // Re-storing the same key replaces it without duplicating.
  const BlockingParams updated{120, 256, 2048};
  ASSERT_TRUE(store_tuned_blocking(path, "this-host|avx512|mr8nr8", updated));
  EXPECT_EQ(load_tuned_blocking(path, "this-host|avx512|mr8nr8"), updated);
  EXPECT_EQ(load_tuned_blocking(path, "other-host|portable|mr4nr8"), theirs);
  std::remove(path.c_str());
}

TEST(Tuning, CorruptOrStaleCacheReadsAsAbsentNeverThrows) {
  const std::string path = temp_path("cache-corrupt");
  const auto write_file = [&](const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  };
  // Missing file.
  std::remove(path.c_str());
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  // Stale/foreign version header.
  write_file("hmxp-tune v0\nkey\t96 192 1024\n");
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  // Binary garbage.
  write_file("\x7f\x45\x4c\x46 not a cache at all");
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  // Right header, malformed entry line: the WHOLE file is suspect.
  write_file("hmxp-tune v1\nkey\t96 onehundred 1024\n");
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  write_file("hmxp-tune v1\nno-tab-separator 96 192 1024\n");
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  write_file("hmxp-tune v1\nkey\t96 192 1024 trailing-junk\n");
  EXPECT_EQ(load_tuned_blocking(path, "key"), std::nullopt);
  // A corrupt file is also safe to store through (rewritten whole).
  write_file("garbage");
  EXPECT_TRUE(store_tuned_blocking(path, "key", {96, 192, 1024}));
  EXPECT_EQ(load_tuned_blocking(path, "key"),
            (BlockingParams{96, 192, 1024}));
  std::remove(path.c_str());
}

TEST(Tuning, CacheOffDisablesPersistence) {
  const TuningStateGuard guard;
  set_tuning_cache_override("off");
  EXPECT_TRUE(tuning_cache_path().empty());
  EXPECT_FALSE(store_tuned_blocking(tuning_cache_path(), "key",
                                    kDefaultBlocking));
  set_tuning_cache_override(temp_path("cache-on"));
  EXPECT_FALSE(tuning_cache_path().empty());
}

// ---- resolution order -------------------------------------------------------

TEST(Tuning, ResolutionWalksForcedCacheSearchDefault) {
  const TuningStateGuard guard;
  const MicroKernelVariant variant = active_micro_kernel_variant();
  const std::size_t mr = micro_kernel_mr(variant);
  const std::size_t nr = micro_kernel_nr(variant);
  const std::string path = temp_path("cache-resolution");
  std::remove(path.c_str());
  set_tuning_cache_override(path);

  // Tuning off: the historical default, nothing measured.
  set_tune_mode(TuneMode::kOff);
  invalidate_resolved_blocking();
  TuneOutcome outcome = resolve_blocking(variant);
  EXPECT_STREQ(outcome.source, "off");
  EXPECT_EQ(outcome.params, kDefaultBlocking);
  EXPECT_EQ(outcome.candidates_measured, 0u);

  // Auto with a pre-seeded cache: the cached winner installs without a
  // search. 24 is a multiple of every register-tile MR (4, 6, 8).
  const BlockingParams seeded{24, 64, nr * 32};
  ASSERT_NO_THROW(validate_blocking(seeded, mr, nr));
  ASSERT_TRUE(store_tuned_blocking(path, tuning_cache_key(variant), seeded));
  set_tune_mode(TuneMode::kAuto);
  invalidate_resolved_blocking();
  outcome = resolve_blocking(variant);
  EXPECT_STREQ(outcome.source, "cache");
  EXPECT_EQ(outcome.params, seeded);
  EXPECT_EQ(outcome.candidates_measured, 0u);
  EXPECT_EQ(active_blocking(), seeded);

  // An ABSURD cached entry must not install: corruption falls back to a
  // real search, never a crash.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "hmxp-tune v1\n"
        << tuning_cache_key(variant) << "\t7 3 11\n";
  }
  invalidate_resolved_blocking();
  outcome = resolve_blocking(variant);
  EXPECT_STREQ(outcome.source, "search");
  EXPECT_GT(outcome.candidates_measured, 0u);
  EXPECT_NO_THROW(validate_blocking(outcome.params, mr, nr));

  // The search persisted its winner: resolving again reads the cache.
  EXPECT_EQ(load_tuned_blocking(path, tuning_cache_key(variant)),
            outcome.params);
  invalidate_resolved_blocking();
  const TuneOutcome again = resolve_blocking(variant);
  EXPECT_STREQ(again.source, "cache");
  EXPECT_EQ(again.params, outcome.params);

  // A forced pin beats everything.
  const BlockingParams pinned{mr * 6, 96, nr * 16};
  force_blocking(pinned);
  EXPECT_STREQ(resolve_blocking(variant).source, "forced");
  EXPECT_EQ(resolve_blocking(variant).params, pinned);
  EXPECT_EQ(active_blocking(), pinned);
  std::remove(path.c_str());
}

TEST(Tuning, SmokeSearchIsBoundedAndIgnoresTheCache) {
  const TuningStateGuard guard;
  const MicroKernelVariant variant = active_micro_kernel_variant();
  const std::string path = temp_path("cache-smoke");
  std::remove(path.c_str());
  set_tuning_cache_override(path);
  // Seed a cache entry smoke mode must NOT short-circuit through.
  const BlockingParams seeded{micro_kernel_mr(variant) * 4, 64,
                              micro_kernel_nr(variant) * 8};
  ASSERT_TRUE(store_tuned_blocking(path, tuning_cache_key(variant), seeded));

  set_tune_mode(TuneMode::kSmoke);
  invalidate_resolved_blocking();
  const TuneOutcome outcome = resolve_blocking(variant);
  EXPECT_STREQ(outcome.source, "search");
  EXPECT_GT(outcome.candidates_measured, 0u);
  EXPECT_LE(outcome.candidates_measured, 3u);
  EXPECT_NO_THROW(validate_blocking(outcome.params,
                                    micro_kernel_mr(variant),
                                    micro_kernel_nr(variant)));
  std::remove(path.c_str());
}

TEST(Tuning, NonDefaultResolvedBlockingComputesCorrectly) {
  // The tuner's winner is not just installed -- the packed path computes
  // the right product under it (exercised against the naive oracle).
  const TuningStateGuard guard;
  set_tune_mode(TuneMode::kSmoke);
  set_tuning_cache_override("off");
  invalidate_resolved_blocking();
  const BlockingParams params = active_blocking();

  util::Rng rng(404);
  const auto a = Matrix::random(137, 61, rng);
  const auto b = Matrix::random(61, 149, rng);
  Matrix c(137, 149, 0.0);
  Matrix oracle = c;
  gemm_simd(a.view(), b.view(), c.view());
  gemm_naive(a.view(), b.view(), oracle.view());
  EXPECT_LT(Matrix::max_abs_diff(c, oracle), 1e-9)
      << "blocking " << blocking_to_string(params);
}

// ---- cross-transport parity under a tuned blocking --------------------------

TEST(Tuning, EverySchedulerRepliesIdenticallyOnAllTransportsWhenTuned) {
  HMXP_SKIP_UNDER_TSAN();
  // The acceptance bar for the fork-boundary propagation: install a
  // NON-default blocking (valid for every micro-kernel tile), then for
  // every registered scheduler replay one simulated schedule on the
  // thread, process and shm transports. The hello handshake proves each
  // forked worker booted with the identical tuned configuration, and
  // the three C matrices must agree bit for bit.
  const TuningStateGuard guard;
  force_blocking(BlockingParams{48, 96, 128});
  ASSERT_EQ(active_blocking(), (BlockingParams{48, 96, 128}));

  const auto plat = platform::Platform::homogeneous(3, 0.01, 0.002, 40);
  const matrix::Partition part(52, 70, 100, 8);
  util::Rng rng(11);
  const auto a = Matrix::random(part.n_a(), part.n_ab(), rng);
  util::Rng rng_b(12);
  const auto b = Matrix::random(part.n_ab(), part.n_b(), rng_b);
  util::Rng rng_c(13);
  const Matrix c_initial = Matrix::random(part.n_a(), part.n_b(), rng_c);

  const runtime::TransportKind kinds[3] = {runtime::TransportKind::kThread,
                                           runtime::TransportKind::kProcess,
                                           runtime::TransportKind::kShm};
  for (const std::string& algorithm : sched::Registry::instance().names()) {
    SCOPED_TRACE(algorithm);
    auto probe = sched::Registry::instance().make(algorithm, plat, part);
    std::vector<sim::Decision> simulated;
    sim::simulate(*probe, plat, part, false, &simulated);

    Matrix results[3] = {c_initial, c_initial, c_initial};
    for (int which = 0; which < 3; ++which) {
      sim::ReplayScheduler replay(algorithm, simulated);
      runtime::ExecutorOptions options;
      options.transport = kinds[which];
      const runtime::ExecutorReport report = runtime::execute_online(
          replay, plat, part, a, b, results[which], options);
      EXPECT_TRUE(report.verified)
          << runtime::transport_kind_name(kinds[which]);
      // The report names the tuned configuration it ran under.
      EXPECT_EQ(report.kernel_blocking, (BlockingParams{48, 96, 128}));
    }
    EXPECT_EQ(Matrix::max_abs_diff(results[1], results[0]), 0.0);
    EXPECT_EQ(Matrix::max_abs_diff(results[2], results[0]), 0.0);
  }
}

}  // namespace
}  // namespace hmxp::matrix

// ---- CI smoke: the real environment -----------------------------------------

namespace hmxp::matrix {
namespace {

TEST(TuningSmoke, ResolvesInstallsAndPersistsUnderTheRealEnvironment) {
  // No overrides: HMXP_TUNE / HMXP_TUNE_CACHE govern, exactly as a user
  // run would. CI invokes this filter with HMXP_TUNE=smoke and a temp
  // cache dir; locally it exercises whatever the environment says.
  invalidate_resolved_blocking();
  const MicroKernelVariant variant = active_micro_kernel_variant();
  const TuneOutcome outcome = resolve_blocking(variant);
  EXPECT_NO_THROW(validate_blocking(outcome.params, micro_kernel_mr(variant),
                                    micro_kernel_nr(variant)));
  const std::string source(outcome.source);
  EXPECT_TRUE(source == "off" || source == "cache" || source == "search" ||
              source == "forced")
      << source;

  // Idempotent: the second resolve reads the installed slot.
  const TuneOutcome again = resolve_blocking(variant);
  EXPECT_EQ(again.params, outcome.params);

  // When a search ran and persistence is on, the winner must be on disk
  // under this host's key.
  if (source == "search" && !tuning_cache_path().empty()) {
    EXPECT_EQ(load_tuned_blocking(tuning_cache_path(),
                                  tuning_cache_key(variant)),
              outcome.params);
  }

  // And the installed blocking computes the right product.
  util::Rng rng(505);
  const auto a = Matrix::random(96, 48, rng);
  const auto b = Matrix::random(48, 112, rng);
  Matrix c(96, 112, 0.0);
  Matrix oracle = c;
  gemm_simd(a.view(), b.view(), c.view());
  gemm_naive(a.view(), b.view(), oracle.view());
  EXPECT_LT(Matrix::max_abs_diff(c, oracle), 1e-9);
}

}  // namespace
}  // namespace hmxp::matrix
