// Unit tests for the util layer: stats, rng, strings, csv, table, flags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace hmxp::util {
namespace {

TEST(StreamingStats, MatchesExactMoments) {
  StreamingStats stats;
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  double sum = 0.0;
  for (double x : xs) {
    stats.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), m2 / (static_cast<double>(xs.size()) - 1),
              1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.25);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(StreamingStats, EmptyAndSingletonContracts) {
  StreamingStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW(stats.mean(), std::invalid_argument);
  EXPECT_THROW(stats.min(), std::invalid_argument);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_THROW(stats.variance(), std::invalid_argument);
}

TEST(Samples, MedianAndQuantiles) {
  Samples samples;
  samples.add_all({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(samples.median(), 3.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(samples.quantile(0.25), 2.0);
  samples.add(6.0);  // even count: median interpolates
  EXPECT_DOUBLE_EQ(samples.median(), 3.5);
}

TEST(Samples, GeomeanAndGuards) {
  Samples samples;
  samples.add_all({1.0, 4.0, 16.0});
  EXPECT_NEAR(samples.geomean(), 4.0, 1e-12);
  samples.add(-1.0);
  EXPECT_THROW(samples.geomean(), std::invalid_argument);
  EXPECT_THROW(samples.quantile(1.5), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedChangesStream) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) differences += (a() != b());
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformRanges) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(2.0, 3.5);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.5);
    const auto n = rng.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
  EXPECT_THROW(rng.uniform(3.0, 3.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = values;
  rng.shuffle(values);
  auto resorted = values;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng child = parent.fork();
  EXPECT_NE(parent(), child());
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(trim("  hello\t\n"), "hello");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, PrefixSuffixCase) {
  EXPECT_TRUE(starts_with("hmxp_core", "hmxp"));
  EXPECT_FALSE(starts_with("hm", "hmxp"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, ParseValidation) {
  EXPECT_DOUBLE_EQ(parse_double(" 2.5 "), 2.5);
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_TRUE(parse_bool("Yes"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_int("12.5"), std::invalid_argument);
  EXPECT_THROW(parse_bool("maybe"), std::invalid_argument);
  EXPECT_THROW(parse_double(""), std::invalid_argument);
}

TEST(Strings, DurationFormatting) {
  EXPECT_EQ(format_duration(0.5e-9 * 3), "1.5 ns");
  EXPECT_EQ(format_duration(2.5e-3), "2.50 ms");
  EXPECT_EQ(format_duration(42.0), "42.00 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
  EXPECT_EQ(format_duration(7201.0), "2.00 h");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 3), "abc");
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsWithWidthCheck) {
  const std::string path = testing::TempDir() + "/hmxp_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.build_row().cell(std::string("x")).cell(1.5).done();
    csv.build_row().cell(2.0).cell(static_cast<long long>(7)).done();
    EXPECT_EQ(csv.rows_written(), 2u);
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "x,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "2,7");
}

TEST(Table, RendersAlignedGrid) {
  Table table({"name", "value"});
  table.set_align(0, Align::kLeft);
  table.build_row().cell(std::string("alpha")).cell(1.0, 2).done();
  table.add_rule();
  table.build_row().cell(std::string("b")).cell(12.5, 2).done();
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("| alpha |  1.00 |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 12.50 |"), std::string::npos);
  // Header + rule between the two rows -> at least 4 '+---+' rules.
  EXPECT_GE(std::count(rendered.begin(), rendered.end(), '+'), 12);
}

TEST(Table, RejectsMisshapenRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Flags, ParsesAllForms) {
  Flags flags;
  flags.define("size", "10", "problem size");
  flags.define_bool("fast", false, "fast mode");
  flags.define("name", "default", "label");
  const char* argv[] = {"prog", "--size=42", "--fast", "--name", "hello",
                        "positional"};
  flags.parse(6, argv);
  EXPECT_EQ(flags.get_int("size"), 42);
  EXPECT_TRUE(flags.get_bool("fast"));
  EXPECT_EQ(flags.get_string("name"), "hello");
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"positional"}));
  EXPECT_TRUE(flags.provided("size"));
}

TEST(Flags, DefaultsAndErrors) {
  Flags flags;
  flags.define("x", "1.5", "x value");
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("x"), 1.5);
  EXPECT_FALSE(flags.provided("x"));

  Flags bad;
  bad.define("x", "1", "x");
  const char* argv2[] = {"prog", "--unknown=3"};
  EXPECT_THROW(bad.parse(2, argv2), std::invalid_argument);
  const char* argv3[] = {"prog", "--x"};
  EXPECT_THROW(bad.parse(2, argv3), std::invalid_argument);  // missing value
  EXPECT_THROW(bad.get_string("never-defined"), std::invalid_argument);
}

TEST(Flags, HelpRequested) {
  Flags flags;
  flags.define("a", "1", "a flag");
  const char* argv[] = {"prog", "--help"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.usage("desc").find("a flag"), std::string::npos);
}

}  // namespace
}  // namespace hmxp::util
