// Tests for Hom / HomI virtual-platform extraction (section 6.2).
#include <gtest/gtest.h>

#include "platform/generator.hpp"
#include "sched/virtual_platform.hpp"
#include "sim/scheduler.hpp"

namespace hmxp::sched {
namespace {

matrix::Partition blocks(std::size_t r, std::size_t t, std::size_t s) {
  return matrix::Partition::from_blocks(r, t, s, 80);
}

TEST(VirtualPlatform, HomOnHomogeneousPlatformIsIdentity) {
  const auto plat = platform::Platform::homogeneous(5, 0.004, 0.0007, 800);
  const auto part = blocks(20, 8, 40);
  const VirtualSelection selection = select_hom(plat, part);
  EXPECT_EQ(selection.candidates.size(), 5u);
  EXPECT_DOUBLE_EQ(selection.params.c, 0.004);
  EXPECT_DOUBLE_EQ(selection.params.w, 0.0007);
  EXPECT_EQ(selection.params.m, 800);
}

TEST(VirtualPlatform, HomChoosesAmongMemoryThresholds) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(20, 10, 60);
  const VirtualSelection selection = select_hom(plat, part);
  // The virtual memory must be one of the three platform memory sizes
  // and the candidates exactly the workers at or above it.
  std::set<model::BlockCount> memories;
  for (const auto& worker : plat.workers()) memories.insert(worker.m);
  EXPECT_TRUE(memories.count(selection.params.m) == 1);
  for (const int index : selection.candidates)
    EXPECT_GE(plat.worker(index).m, selection.params.m);
  EXPECT_GT(selection.predicted_makespan, 0.0);
}

TEST(VirtualPlatform, HomUsesWorstSpeedAmongEligible) {
  // On the links platform all memories are equal, so Hom sees a single
  // candidate platform whose virtual c is the worst link.
  const platform::Platform plat = platform::hetero_links();
  const auto part = blocks(20, 10, 60);
  const VirtualSelection selection = select_hom(plat, part);
  EXPECT_EQ(selection.candidates.size(), 8u);
  double worst_c = 0;
  for (const auto& worker : plat.workers())
    worst_c = std::max(worst_c, worker.c);
  EXPECT_DOUBLE_EQ(selection.params.c, worst_c);
}

TEST(VirtualPlatform, HomIPredictionNeverWorseThanHom) {
  // HomI's search space includes every Hom candidate (for a memory
  // threshold M, HomI also evaluates (M, worst c, worst w)), so its
  // predicted makespan is never worse.
  for (const auto& plat :
       {platform::hetero_memory(), platform::hetero_links(),
        platform::hetero_compute(), platform::fully_hetero(4.0)}) {
    const auto part = blocks(15, 8, 40);
    const VirtualSelection hom = select_hom(plat, part);
    const VirtualSelection homi = select_homi(plat, part);
    EXPECT_LE(homi.predicted_makespan, hom.predicted_makespan + 1e-9)
        << plat.name();
  }
}

TEST(VirtualPlatform, HomISelectsFastLinksOnLinkHeterogeneousPlatform) {
  const platform::Platform plat = platform::hetero_links();
  const auto part = blocks(20, 10, 60);
  const VirtualSelection selection = select_homi(plat, part);
  // The chosen virtual bandwidth must beat the platform's worst link:
  // the whole point of HomI on this platform (fig. 5).
  double worst_c = 0;
  for (const auto& worker : plat.workers())
    worst_c = std::max(worst_c, worker.c);
  EXPECT_LT(selection.params.c, worst_c);
  for (const int index : selection.candidates)
    EXPECT_LE(plat.worker(index).c, selection.params.c + 1e-15);
}

TEST(VirtualPlatform, SchedulersRunOnRealPlatform) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(20, 10, 60);
  auto hom = make_hom(plat, part);
  auto homi = make_homi(plat, part);
  const auto hom_result = sim::simulate(hom, plat, part, true);
  const auto homi_result = sim::simulate(homi, plat, part, true);
  EXPECT_EQ(hom_result.updates, 20 * 60 * 10);
  EXPECT_EQ(homi_result.updates, 20 * 60 * 10);
  EXPECT_TRUE(hom_result.trace.one_port_respected());
  EXPECT_TRUE(homi_result.trace.one_port_respected());
}

TEST(VirtualPlatform, DescriptionMentionsThresholds) {
  const platform::Platform plat = platform::hetero_memory();
  const auto part = blocks(10, 5, 30);
  const VirtualSelection selection = select_homi(plat, part);
  EXPECT_NE(selection.description.find("m>="), std::string::npos);
  EXPECT_NE(selection.description.find("eligible"), std::string::npos);
}

}  // namespace
}  // namespace hmxp::sched
