// Shared helpers for the test suites.
#pragma once

#include <string>

namespace hmxp::testing {

/// Registry names may carry characters that are not identifier-safe
/// ('-' in FT-ODDOML, OMMOML-cal); gtest parameter names must be
/// identifiers, so every non-alphanumeric character maps to '_'.
inline std::string param_safe(const std::string& name) {
  std::string safe = name;
  for (char& ch : safe) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9');
    if (!ok) ch = '_';
  }
  return safe;
}

}  // namespace hmxp::testing
